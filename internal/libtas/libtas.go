// Package libtas is the untrusted per-application user-space stack
// (§3.3): it presents a sockets-style interface (Dial/Listen/Accept/
// Send/Recv/Close) on top of the fast path's context queues and per-flow
// payload buffers, plus the low-level API (direct context-event access,
// the IX-like interface the paper calls "TAS LL").
//
// Each Context corresponds to one application thread: it owns a queue
// pair per fast-path core and an epoll-like wakeup channel. A Context's
// methods (and those of the Conns and Listeners bound to it) must be
// used from one goroutine at a time, exactly like the paper's
// per-thread contexts.
package libtas

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/shmring"
	"repro/internal/slowpath"
	"repro/internal/telemetry"
)

// Errors returned by the sockets layer.
var (
	ErrTimeout    = errors.New("libtas: operation timed out")
	ErrClosed     = errors.New("libtas: connection closed")
	ErrWouldBlock = errors.New("libtas: operation would block")
	// ErrReset: the connection was aborted — the peer sent RST, or the
	// slow path exhausted its retransmission budget (dead peer,
	// partition). In-flight data may have been lost.
	ErrReset = errors.New("libtas: connection reset")
	// ErrPeerDead: the slow path's liveness probes — zero-window persist
	// probes or keepalives — went unanswered past their budget; the peer
	// is presumed silently dead (crashed without RST, or blackholed).
	// Wraps ErrReset so errors.Is(err, ErrReset) checks keep matching.
	ErrPeerDead = fmt.Errorf("libtas: peer dead (liveness probes unanswered): %w", ErrReset)
	// ErrAppDead: the slow path declared this application context
	// crashed (missed heartbeats) and reaped its resources; the context
	// and everything bound to it are unusable.
	ErrAppDead = errors.New("libtas: application context reaped")
	// ErrSlowPathDown: the TAS control plane is unavailable (slow-path
	// crash or stall detected via missed heartbeats). Established
	// connections keep transferring on the fast path, but operations
	// that need the slow path — Dial, Listen — fail fast until a warm
	// restart recovers it.
	ErrSlowPathDown = errors.New("libtas: slow path down")
	// ErrBackpressure: a finite resource pool or this application's
	// quota is exhausted (or the degradation ladder's TX clamp bound a
	// non-blocking send). The operation was refused deliberately so the
	// caller can shed or defer load; retrying after pressure subsides is
	// expected to succeed.
	ErrBackpressure = errors.New("libtas: backpressure: resources exhausted")
)

// Stack binds a fast-path engine and slow path into an application-
// facing user-level TCP stack.
type Stack struct {
	Eng *fastpath.Engine

	// slow is the current slow-path instance. It is an atomic pointer
	// because a warm restart swaps in a fresh instance while
	// application goroutines are mid-call; connections always route
	// control requests through Slow() so they reach whichever instance
	// is current.
	slow atomic.Pointer[slowpath.Slowpath]

	// Telem, when non-nil, enables application-side observability:
	// app-copy cycle accounting and app-send/app-recv flight-recorder
	// events. Set it before creating contexts (the facade does).
	Telem *telemetry.Telemetry
}

// NewStack registers the application with the TAS service (the paper's
// special system call + UNIX socket bootstrap, in-process here).
func NewStack(eng *fastpath.Engine, slow *slowpath.Slowpath) *Stack {
	s := &Stack{Eng: eng}
	s.slow.Store(slow)
	return s
}

// Slow returns the current slow-path instance.
func (s *Stack) Slow() *slowpath.Slowpath { return s.slow.Load() }

// SetSlow swaps in a warm-restarted slow-path instance.
func (s *Stack) SetSlow(sp *slowpath.Slowpath) { s.slow.Store(sp) }

// Context is one application thread's attachment: event queues plus the
// connection registry used to dispatch events.
type Context struct {
	stack *Stack
	fp    *fastpath.Context

	mu        sync.Mutex
	conns     []*Conn     // index = opaque id
	listeners []*Listener // index = listener opaque id

	dispatchMu sync.Mutex
	evBuf      [256]fastpath.Event

	// Application liveness: a keepalive goroutine beats the fast-path
	// context on the slow path's heartbeat cadence, standing in for the
	// live application process. The fault harness (KillApp/StallApp)
	// manipulates it to simulate crashes and stalls.
	hbStop   chan struct{}
	hbStall  atomic.Int64 // unix nanos until which beats are suppressed
	killOnce sync.Once

	// wakeTicks drives the sampled wakeup-to-ready latency observation
	// in wait (1-in-wakeSampleEvery wakeups). Atomic: a context's wait
	// can be entered from more than one goroutine over its lifetime.
	wakeTicks atomic.Uint64
}

// wakeSampleEvery is the wakeup-latency sampling period (power of two):
// wait times one in this many wakeup→condition cycles, mirroring the
// app-copy cycle sampling in conn.go.
const wakeSampleEvery = 32

// NewContext allocates and registers a context, and starts its
// application heartbeat.
func (s *Stack) NewContext() *Context {
	ctx := &Context{stack: s, hbStop: make(chan struct{})}
	ctx.fp = fastpath.NewContext(0, s.Eng.MaxCores(), 1024)
	s.Eng.RegisterContext(ctx.fp)
	ctx.fp.Beat()
	go ctx.heartbeatLoop(s.Slow().HeartbeatInterval())
	return ctx
}

// heartbeatLoop stamps the context's liveness epoch until the app is
// killed (KillApp) or stalled past the reaper's patience.
func (c *Context) heartbeatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
			if time.Now().UnixNano() < c.hbStall.Load() {
				continue // StallApp window: the app is wedged
			}
			c.fp.Beat()
		}
	}
}

// KillApp simulates the application crashing: heartbeats stop
// immediately and never resume, so the slow-path reaper will detect the
// death after AppTimeout and reclaim every resource the context holds.
// Part of the app-layer fault harness (the application-side counterpart
// of the netsim FaultInjector).
func (c *Context) KillApp() {
	c.killOnce.Do(func() { close(c.hbStop) })
}

// StallApp simulates the application wedging for d: heartbeats are
// suppressed until the window passes. A stall shorter than the reaper's
// AppTimeout is survivable; a longer one is indistinguishable from a
// crash and gets the context reaped.
func (c *Context) StallApp(d time.Duration) {
	c.hbStall.Store(time.Now().Add(d).UnixNano())
}

// CorruptQueue simulates a buggy or malicious application scribbling
// over its shared-memory TX queues: it enqueues n garbage descriptors
// (bad opcodes, nil and bogus flow references, impossible byte counts)
// drawn from seed, returning how many were actually enqueued (the
// queues are bounded). The fast path must drop-and-count every one
// without corrupting state or panicking.
func (c *Context) CorruptQueue(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	injected := 0
	for i := 0; i < n; i++ {
		var f *flowstate.Flow
		switch rng.Intn(3) {
		case 0:
			// nil flow reference.
		case 1:
			// A fabricated flow object that is not in the flow table.
			f = &flowstate.Flow{
				LocalIP:   protocol.MakeIPv4(192, 0, 2, byte(rng.Intn(256))),
				LocalPort: uint16(rng.Intn(1 << 16)),
				PeerIP:    protocol.MakeIPv4(198, 51, 100, byte(rng.Intn(256))),
				PeerPort:  uint16(rng.Intn(1 << 16)),
				RxBuf:     shmring.NewPayloadBuffer(64),
				TxBuf:     shmring.NewPayloadBuffer(64),
			}
			f.RxBuf.Reclaim() // keep the fake out of pool accounting
			f.TxBuf.Reclaim()
		case 2:
			// A structurally broken flow (missing buffers).
			f = &flowstate.Flow{}
		}
		cmd := fastpath.TxCmd{
			Op:    uint8(rng.Intn(8)), // mostly invalid opcodes; OpTx hits still fail flow checks
			Flow:  f,
			Bytes: rng.Uint32(),
		}
		core := rng.Intn(c.fp.Cores())
		if c.fp.PushTx(core, cmd) {
			injected++
		}
		c.stack.Eng.Nudge(core)
	}
	return injected
}

// FP exposes the low-level context (the TAS LL API).
func (c *Context) FP() *fastpath.Context { return c.fp }

// dispatch drains pending fast-path events into connection state. It
// returns the number of events processed. Contexts are meant to be used
// from a single goroutine; the mutex only prevents corruption if that
// contract is violated.
func (c *Context) dispatch() int {
	c.dispatchMu.Lock()
	defer c.dispatchMu.Unlock()
	n := c.fp.PollEvents(c.evBuf[:])
	for i := 0; i < n; i++ {
		ev := c.evBuf[i]
		switch ev.Kind {
		case fastpath.EvAccepted:
			c.mu.Lock()
			if int(ev.Opaque) < len(c.listeners) {
				l := c.listeners[ev.Opaque]
				l.backlog = append(l.backlog, ev.Flow)
			}
			c.mu.Unlock()
		case fastpath.EvConnected:
			c.mu.Lock()
			if int(ev.Opaque) < len(c.conns) {
				if conn := c.conns[ev.Opaque]; conn != nil {
					switch ev.Bytes {
					case 0:
						conn.flow = ev.Flow
						conn.established.Store(true)
					case fastpath.ConnTimedOut:
						conn.timedOut.Store(true)
					case fastpath.ConnBackpressure:
						conn.backpressured.Store(true)
					default: // fastpath.ConnRefused
						conn.refused.Store(true)
					}
				}
			}
			c.mu.Unlock()
		case fastpath.EvClosed:
			c.mu.Lock()
			if int(ev.Opaque) < len(c.conns) {
				if conn := c.conns[ev.Opaque]; conn != nil {
					conn.peerClosed.Store(true)
				}
			}
			c.mu.Unlock()
		case fastpath.EvAborted:
			c.mu.Lock()
			if int(ev.Opaque) < len(c.conns) {
				if conn := c.conns[ev.Opaque]; conn != nil {
					if ev.Bytes == fastpath.AbortPeerDead {
						conn.peerDead.Store(true)
					}
					conn.aborted.Store(true)
				}
			}
			c.mu.Unlock()
		case fastpath.EvData, fastpath.EvTxAcked:
			// Pure wakeups: Recv/Send poll the payload buffers directly,
			// so event payloads need not be tracked.
		}
	}
	return n
}

// wait polls until cond holds, blocking on the context's wakeup channel
// between polls (the epoll analogue). A zero timeout waits forever. A
// context reaped by the slow path fails fast with ErrAppDead instead of
// blocking on queues nobody serves anymore.
func (c *Context) wait(cond func() bool, timeout time.Duration) error {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	// wokeAt is non-zero when the preceding wakeup was sampled for the
	// wakeup-to-ready latency histogram: the span from the fast path
	// firing the wake channel to the condition (data/event visible to
	// the app) holding.
	var wokeAt time.Time
	for {
		if c.fp.Dead() {
			return ErrAppDead
		}
		c.dispatch()
		if cond() {
			c.observeWake(wokeAt)
			return nil
		}
		wokeAt = time.Time{}
		ch := c.fp.Sleep()
		// Re-poll after publishing the sleep flag (lost-wakeup guard).
		c.dispatch()
		if cond() {
			c.fp.Awake()
			return nil
		}
		if deadline.IsZero() {
			<-ch
		} else {
			d := time.Until(deadline)
			if d <= 0 {
				c.fp.Awake()
				return ErrTimeout
			}
			select {
			case <-ch:
			case <-time.After(d):
				c.fp.Awake()
				return ErrTimeout
			}
		}
		wokeAt = c.sampleWake()
		c.fp.Awake()
	}
}

// sampleWake stamps 1-in-wakeSampleEvery wakeups (zero otherwise); the
// unsampled cost is one atomic increment.
func (c *Context) sampleWake() time.Time {
	if c.stack.Telem == nil {
		return time.Time{}
	}
	if c.wakeTicks.Add(1)&(wakeSampleEvery-1) != 0 {
		return time.Time{}
	}
	return time.Now()
}

// observeWake records a sampled wakeup-to-ready latency (µs).
func (c *Context) observeWake(wokeAt time.Time) {
	if wokeAt.IsZero() {
		return
	}
	if t := c.stack.Telem; t != nil {
		us := time.Since(wokeAt).Microseconds()
		if us < 0 {
			us = 0
		}
		t.Wakeup.Observe(uint64(us), c.fp.ID)
	}
}

// newConnLocked allocates a Conn slot; caller holds c.mu.
func (c *Context) newConnLocked() (*Conn, uint64) {
	conn := &Conn{ctx: c}
	c.conns = append(c.conns, conn)
	return conn, uint64(len(c.conns) - 1)
}

// Dial opens a TCP connection to ip:port via the slow path, blocking
// until the handshake completes.
func (c *Context) Dial(ip protocol.IPv4, port uint16, timeout time.Duration) (*Conn, error) {
	if c.fp.Dead() {
		return nil, ErrAppDead
	}
	// Shed fast while the control plane is down: a SYN sent now has
	// nobody to complete its handshake, so failing immediately beats
	// blocking the application until its dial deadline.
	if c.stack.Eng.Degraded() {
		return nil, ErrSlowPathDown
	}
	c.mu.Lock()
	conn, opaque := c.newConnLocked()
	c.mu.Unlock()
	if _, err := c.stack.Slow().Connect(ip, port, uint16(c.fp.ID), opaque); err != nil {
		if errors.Is(err, slowpath.ErrDown) {
			return nil, ErrSlowPathDown
		}
		if errors.Is(err, resource.ErrExhausted) {
			// The governor refused admission (quota or half-open pool):
			// explicit backpressure before any handshake traffic.
			return nil, ErrBackpressure
		}
		return nil, err
	}
	err := c.wait(func() bool {
		return conn.established.Load() || conn.refused.Load() ||
			conn.timedOut.Load() || conn.backpressured.Load()
	}, timeout)
	if err != nil {
		return nil, err
	}
	if conn.backpressured.Load() {
		// The handshake completed but flow installation was refused:
		// pools were exhausted at the moment of establishment.
		return nil, ErrBackpressure
	}
	if conn.refused.Load() {
		return nil, slowpath.ErrNoListener
	}
	if conn.timedOut.Load() {
		// The slow path exhausted its SYN retransmission budget (lost
		// SYNs, partition, dead peer) before the caller's deadline.
		return nil, ErrTimeout
	}
	conn.flow.Lock()
	conn.flow.Opaque = opaque
	conn.flow.Unlock()
	return conn, nil
}

// Listen registers a listening port on this context with the slow
// path's default accept backlog.
func (c *Context) Listen(port uint16) (*Listener, error) {
	return c.ListenBacklog(port, 0)
}

// ListenBacklog registers a listening port with an explicit bound on
// in-flight handshakes plus accepted-but-unconsumed connections
// (0 = the slow path's configured default). SYNs beyond the bound are
// shed by the slow path instead of queued without bound.
func (c *Context) ListenBacklog(port uint16, backlog int) (*Listener, error) {
	if c.fp.Dead() {
		return nil, ErrAppDead
	}
	if c.stack.Eng.Degraded() {
		return nil, ErrSlowPathDown
	}
	c.mu.Lock()
	l := &Listener{ctx: c, port: port}
	c.listeners = append(c.listeners, l)
	opaque := uint64(len(c.listeners) - 1)
	c.mu.Unlock()
	pending, err := c.stack.Slow().ListenBacklog(port, uint16(c.fp.ID), opaque, backlog)
	if err != nil {
		if errors.Is(err, slowpath.ErrDown) {
			return nil, ErrSlowPathDown
		}
		return nil, err
	}
	l.pending = pending
	return l, nil
}

// Listener accepts inbound connections on a port.
type Listener struct {
	ctx     *Context
	port    uint16
	backlog []*flowstate.Flow
	closed  bool
	// pending mirrors the slow path's accept-queue depth gauge: the
	// slow path increments it per delivered accept event; Accept
	// decrements it as the application consumes connections, opening
	// backlog headroom for new SYNs.
	pending *atomic.Int32
}

// Accept blocks for the next established connection. A zero timeout
// waits forever.
func (l *Listener) Accept(timeout time.Duration) (*Conn, error) {
	c := l.ctx
	var flow *flowstate.Flow
	err := c.wait(func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		if l.closed {
			return true
		}
		if len(l.backlog) > 0 {
			flow = l.backlog[0]
			l.backlog = l.backlog[1:]
			if l.pending != nil {
				l.pending.Add(-1)
				// Mirror the accept-backlog drain into the governor
				// (charged by the slow path per delivered accept).
				if g := c.stack.Eng.Governor(); g != nil {
					g.Charge(resource.PoolAccept, -1)
				}
			}
			return true
		}
		return false
	}, timeout)
	if err != nil {
		return nil, err
	}
	if flow == nil {
		return nil, ErrClosed
	}
	c.mu.Lock()
	conn, opaque := c.newConnLocked()
	c.mu.Unlock()
	conn.flow = flow
	conn.established.Store(true)
	// Rebind the flow's context-queue events to the accepting conn.
	flow.Lock()
	flow.Opaque = opaque
	flow.Unlock()
	return conn, nil
}

// Close unregisters the listener.
func (l *Listener) Close() {
	l.ctx.stack.Slow().Unlisten(l.port)
	l.ctx.mu.Lock()
	l.closed = true
	l.ctx.mu.Unlock()
	l.ctx.fp.Wake()
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }
