package libtas

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/protocol"
)

func TestPollerReadiness(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(90)
	srvReady := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		srvReady <- c
	}()
	cctx := s1.NewContext()
	c1, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 90, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvReady

	p := cctx.NewPoller()
	p.Add(c1)
	out := make([]Ready, 4)
	// Nothing ready yet.
	if _, err := p.Wait(out, 30*time.Millisecond); err != ErrTimeout {
		t.Fatalf("expected timeout, got %v", err)
	}
	// Server sends: poller must wake with Readable.
	go func() {
		time.Sleep(5 * time.Millisecond)
		srv.Send([]byte("ready!"), time.Second)
	}()
	n, err := p.Wait(out, 5*time.Second)
	if err != nil || n != 1 {
		t.Fatalf("wait: n=%d err=%v", n, err)
	}
	if !out[0].Readable || out[0].Conn != c1 {
		t.Fatalf("readiness: %+v", out[0])
	}
	buf := make([]byte, 16)
	k, _ := c1.Recv(buf, time.Second)
	if string(buf[:k]) != "ready!" {
		t.Fatalf("payload %q", buf[:k])
	}
	// Peer close surfaces as Closed.
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		n, err = p.Wait(out, time.Second)
		if err == nil && n > 0 && out[0].Closed {
			return
		}
	}
	t.Fatal("close never surfaced via poller")
}

func TestPollerWriteInterest(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(91)
	srvConn := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err == nil {
			srvConn <- c
		}
	}()
	cctx := s1.NewContext()
	c1, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 91, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvConn

	// Fill the transmit buffer (peer not reading).
	filler := make([]byte, 32<<10)
	for c1.TxFree() > 0 {
		n := c1.TxFree()
		if n > len(filler) {
			n = len(filler)
		}
		if _, err := c1.Send(filler[:n], time.Second); err != nil {
			break
		}
	}
	p := cctx.NewPoller()
	p.Add(c1)
	p.MarkWriteInterest(c1)
	// Server drains: Writable must fire.
	go func() {
		buf := make([]byte, 64<<10)
		for i := 0; i < 64; i++ {
			if _, err := srv.Recv(buf, time.Second); err != nil {
				return
			}
		}
	}()
	out := make([]Ready, 4)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n, err := p.Wait(out, time.Second)
		if err != nil {
			continue
		}
		for i := 0; i < n; i++ {
			if out[i].Writable {
				return
			}
		}
	}
	t.Fatal("writable never fired")
}

func TestMsgConnFraming(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(92)
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		mc := NewMsgConn(c, 0)
		for i := 0; i < 3; i++ {
			msg, err := mc.RecvMsg(5 * time.Second)
			if err != nil {
				done <- err
				return
			}
			if err := mc.SendMsg(msg, 5*time.Second); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 92, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMsgConn(c, 0)
	// Varied sizes including empty and multi-segment.
	msgs := [][]byte{[]byte("hi"), {}, bytes.Repeat([]byte("x"), 10_000)}
	for _, m := range msgs {
		if err := mc.SendMsg(m, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		got, err := mc.RecvMsg(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, m) {
			t.Fatalf("echo mismatch: %d vs %d bytes", len(got), len(m))
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMsgConnSizeLimit(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(93)
	go ln.Accept(5 * time.Second)
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 93, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMsgConn(c, 128)
	if err := mc.SendMsg(make([]byte, 129), time.Second); err == nil {
		t.Fatal("oversized send should fail")
	}
}

func TestConnStatsAndResize(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(94)
	srvConn := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err == nil {
			srvConn <- c
		}
	}()
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 94, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvConn

	st := c.Stats()
	oldRx, oldTx := st.RxBufSize, st.TxBufSize
	if oldRx <= 0 || oldTx <= 0 {
		t.Fatal("buffer sizes missing")
	}
	// Grow both buffers 4x; connection keeps working.
	c.ResizeBuffers(oldRx*4, oldTx*4)
	st = c.Stats()
	if st.RxBufSize != oldRx*4 || st.TxBufSize != oldTx*4 {
		t.Fatalf("resize: %d/%d, want %d/%d", st.RxBufSize, st.TxBufSize, oldRx*4, oldTx*4)
	}
	// A payload larger than the ORIGINAL tx buffer now fits in one Send.
	big := make([]byte, oldTx*2)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 64<<10)
		hctx := s2.NewContext()
		srv.Rebind(hctx)
		got := 0
		for got < len(big) {
			n, err := srv.Recv(buf, 5*time.Second)
			if err != nil {
				done <- err
				return
			}
			got += n
		}
		done <- nil
	}()
	if _, err := c.Send(big, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// After traffic there is an RTT estimate.
	if c.Stats().RTTMicros == 0 {
		t.Log("no RTT estimate yet (acceptable on loopback timing)")
	}
}

func TestZeroCopySendRecv(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(95)
	srvConn := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err == nil {
			srvConn <- c
		}
	}()
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 95, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvConn

	// Zero-copy send: assemble the message directly in the tx buffer.
	msg := []byte("zero-copy through shared payload buffers")
	n, err := c.SendZeroCopy(len(msg), func(a, b []byte) int {
		k := copy(a, msg)
		k += copy(b, msg[k:])
		return k
	})
	if err != nil || n != len(msg) {
		t.Fatalf("send n=%d err=%v", n, err)
	}
	// Zero-copy receive on the server.
	var got []byte
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < len(msg) && time.Now().Before(deadline) {
		srv.ctx.dispatch()
		srv.RecvZeroCopy(1<<16, func(a, b []byte) int {
			got = append(got, a...)
			got = append(got, b...)
			return len(a) + len(b)
		})
		time.Sleep(100 * time.Microsecond)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestZeroCopyFillValidation(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(96)
	go ln.Accept(5 * time.Second)
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 96, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid fill count should panic")
		}
	}()
	c.SendZeroCopy(16, func(a, b []byte) int { return len(a) + len(b) + 1 })
}

func TestSendNoWait(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(97)
	go ln.Accept(5 * time.Second)
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 97, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the buffer without blocking; eventually ErrWouldBlock.
	chunk := make([]byte, 64<<10)
	sawWouldBlock := false
	for i := 0; i < 100; i++ {
		_, err := c.SendNoWait(chunk)
		if err == ErrWouldBlock {
			sawWouldBlock = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawWouldBlock {
		t.Fatal("full buffer never reported ErrWouldBlock (peer not reading)")
	}
}
