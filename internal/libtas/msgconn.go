package libtas

import (
	"encoding/binary"
	"fmt"
	"time"
)

// MsgConn adds datagram framing on top of a TAS byte stream — the §6
// "Beyond TCP" observation that message framing is simple to layer over
// the stream abstraction while keeping the fast path's constant
// per-flow state (the stream needs no message-boundary tracking in the
// fast path; boundaries live entirely in this untrusted library).
//
// Frames are length-prefixed: [4-byte big-endian length][payload].
type MsgConn struct {
	*Conn
	maxMsg int
	hdr    [4]byte
}

// MaxMsgDefault bounds message size unless overridden.
const MaxMsgDefault = 16 << 20

// NewMsgConn wraps a connection with datagram framing. maxMsg bounds
// accepted message sizes (0 = MaxMsgDefault).
func NewMsgConn(cn *Conn, maxMsg int) *MsgConn {
	if maxMsg <= 0 {
		maxMsg = MaxMsgDefault
	}
	return &MsgConn{Conn: cn, maxMsg: maxMsg}
}

// SendMsg writes one framed message.
func (m *MsgConn) SendMsg(p []byte, timeout time.Duration) error {
	if len(p) > m.maxMsg {
		return fmt.Errorf("libtas: message of %d bytes exceeds limit %d", len(p), m.maxMsg)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := m.Conn.Send(hdr[:], timeout); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	_, err := m.Conn.Send(p, timeout)
	return err
}

// recvFull reads exactly len(p) bytes.
func (m *MsgConn) recvFull(p []byte, timeout time.Duration) error {
	got := 0
	for got < len(p) {
		n, err := m.Conn.Recv(p[got:], timeout)
		if err != nil {
			return err
		}
		got += n
	}
	return nil
}

// RecvMsg reads one framed message, allocating its payload.
func (m *MsgConn) RecvMsg(timeout time.Duration) ([]byte, error) {
	if err := m.recvFull(m.hdr[:], timeout); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(m.hdr[:])
	if int(n) > m.maxMsg {
		return nil, fmt.Errorf("libtas: peer message of %d bytes exceeds limit %d", n, m.maxMsg)
	}
	p := make([]byte, n)
	if n == 0 {
		return p, nil
	}
	if err := m.recvFull(p, timeout); err != nil {
		return nil, err
	}
	return p, nil
}
