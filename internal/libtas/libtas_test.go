package libtas

import (
	"io"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/protocol"
	"repro/internal/slowpath"
)

// newStackPair wires two full TAS instances over a fabric.
func newStackPair(t *testing.T) (*Stack, *Stack, *fabric.Fabric) {
	t.Helper()
	fab := fabric.New()
	mk := func(ip protocol.IPv4) *Stack {
		var eng *fastpath.Engine
		nic := fab.Attach(ip, func(p *protocol.Packet) { eng.Input(p) })
		eng = fastpath.NewEngine(nic, fastpath.Config{LocalIP: ip, LocalMAC: protocol.MACForIPv4(ip), MaxCores: 2})
		sp := slowpath.New(eng, slowpath.Config{})
		eng.Start()
		sp.Start()
		t.Cleanup(func() { sp.Stop(); eng.Stop() })
		return NewStack(eng, sp)
	}
	return mk(protocol.MakeIPv4(10, 0, 0, 1)), mk(protocol.MakeIPv4(10, 0, 0, 2)), fab
}

func TestDialListenEcho(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, err := sctx.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 16)
		n, err := c.Recv(buf, 5*time.Second)
		if err != nil {
			done <- err
			return
		}
		_, err = c.Send(buf[:n], 5*time.Second)
		done <- err
	}()
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 80, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send([]byte("abc"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := c.Recv(buf, 5*time.Second)
	if err != nil || string(buf[:n]) != "abc" {
		t.Fatalf("echo: %q %v", buf[:n], err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeout(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(81)
	go ln.Accept(5 * time.Second)
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 81, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Recv(make([]byte, 8), 50*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("returned before the deadline")
	}
}

func TestRebindMovesEvents(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(82)
	srvDone := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			srvDone <- err
			return
		}
		// Hand the connection to a fresh context, as an accept loop
		// would, then serve from "another goroutine" (here inline).
		hctx := s2.NewContext()
		c.Rebind(hctx)
		buf := make([]byte, 1024)
		total := 0
		for total < 100_000 {
			n, err := c.Recv(buf, 5*time.Second)
			if err != nil {
				srvDone <- err
				return
			}
			total += n
		}
		_, err = c.Send([]byte("ok"), 5*time.Second)
		srvDone <- err
	}()
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 82, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100_000)
	if _, err := c.Send(payload, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, err := c.Recv(buf, 10*time.Second); err != nil || string(buf[:n]) != "ok" {
		t.Fatalf("reply: %q %v", buf[:n], err)
	}
	if err := <-srvDone; err != nil {
		t.Fatal(err)
	}
}

func TestLowLevelAPIEvents(t *testing.T) {
	// The IX-like low-level interface: poll raw events off the context.
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(83)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		n, _ := c.Recv(buf, 5*time.Second)
		c.Send(buf[:n], 5*time.Second)
	}()
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 83, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send([]byte("xyz"), time.Second); err != nil {
		t.Fatal(err)
	}
	// Poll the raw fast-path context for EvData/EvTxAcked.
	fp := cctx.FP()
	deadline := time.Now().Add(5 * time.Second)
	var sawData, sawAcked bool
	var evs [32]fastpath.Event
	for time.Now().Before(deadline) && !(sawData && sawAcked) {
		n := fp.PollEvents(evs[:])
		for i := 0; i < n; i++ {
			switch evs[i].Kind {
			case fastpath.EvData:
				sawData = true
			case fastpath.EvTxAcked:
				sawAcked = true
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !sawData || !sawAcked {
		t.Fatalf("low-level events: data=%v acked=%v", sawData, sawAcked)
	}
	// The payload is read directly from the flow's receive buffer.
	buf := make([]byte, 16)
	n := c.RecvNoWait(buf)
	if string(buf[:n]) != "xyz" {
		t.Fatalf("payload: %q", buf[:n])
	}
}

func TestEOFAfterPeerClose(t *testing.T) {
	s1, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(84)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		c.Send([]byte("bye"), time.Second)
		c.Close()
	}()
	cctx := s1.NewContext()
	c, err := cctx.Dial(protocol.MakeIPv4(10, 0, 0, 2), 84, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := c.Recv(buf, 5*time.Second)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("data before close: %q %v", buf[:n], err)
	}
	if _, err := c.Recv(buf, 5*time.Second); err != io.EOF {
		t.Fatalf("after close err = %v, want EOF", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	_, s2, _ := newStackPair(t)
	sctx := s2.NewContext()
	ln, _ := sctx.Listen(85)
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept(10 * time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ln.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept never unblocked")
	}
}
