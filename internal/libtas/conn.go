package libtas

import (
	"io"
	"sync/atomic"
	"time"

	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/resource"
	"repro/internal/telemetry"
)

// Conn is a TCP connection backed by TAS per-flow payload buffers. Send
// copies into the transmit buffer and posts a TX command on the context
// queue; Recv copies out of the receive buffer (the fast path deposited
// payload there directly). Methods must be called from the context's
// goroutine.
type Conn struct {
	ctx  *Context
	flow *flowstate.Flow

	// established/refused/timedOut/peerClosed/aborted are written by
	// whichever goroutine happens to run dispatch and read by the
	// connection's owner, which may be a different goroutine when several
	// connections share a context — hence atomics.
	established   atomic.Bool
	refused       atomic.Bool
	timedOut      atomic.Bool
	peerClosed    atomic.Bool
	aborted       atomic.Bool // RST received or retransmission budget exhausted
	peerDead      atomic.Bool // refines aborted: liveness probes went unanswered
	backpressured atomic.Bool // flow installation refused: pools/quota exhausted

	closed bool // owner-goroutine only

	// consumedSinceUpdate tracks receive-buffer space freed since the
	// last window update we pushed to the peer.
	consumedSinceUpdate int

	// copyCnt drives app-copy cycle sampling: one copy in
	// appCycleSampleEvery is wall-timed (clock reads cost ~50-90ns,
	// comparable to a small copy). Conns are driven by one application
	// goroutine at a time, so a plain counter suffices.
	copyCnt uint32
}

// appCycleSampleEvery is the app-copy cycle-accounting sampling period
// (power of two); see Conn.copyCnt.
const appCycleSampleEvery = 32

// copyTimer starts a sampled app-copy timing interval: it returns the
// start timestamp and whether this copy is one of the timed samples.
func (cn *Conn) copyTimer(tm *telemetry.Telemetry) (int64, bool) {
	if tm == nil {
		return 0, false
	}
	cn.copyCnt++
	if cn.copyCnt&(appCycleSampleEvery-1) != 0 {
		return 0, false
	}
	return tm.RefreshNow(), true
}

// chargeCopy credits one app copy to the cycle account, with wall time
// scaled back up when this copy was a timed sample.
func chargeCopy(tm *telemetry.Telemetry, t0 int64, timed bool) {
	if tm == nil {
		return
	}
	var nanos int64
	if timed {
		nanos = (tm.RefreshNow() - t0) * appCycleSampleEvery
	}
	tm.Cycles.AddApp(telemetry.ModAppCopy, nanos, 1)
}

// Flow exposes the underlying per-flow state (low-level API users).
func (cn *Conn) Flow() *flowstate.Flow { return cn.flow }

// resetErr maps an aborted connection to its error: ErrPeerDead (which
// wraps ErrReset) when the slow path's liveness probes declared the
// peer silently dead, plain ErrReset otherwise.
func (cn *Conn) resetErr() error {
	if cn.peerDead.Load() {
		return ErrPeerDead
	}
	return ErrReset
}

// txHeadroom returns how many bytes a send may append to the transmit
// buffer right now: the free space, further bounded by the governor's
// per-flow grant while the degradation ladder's TX clamp (rung 3) is
// engaged. The second result reports whether the clamp — not buffer
// fullness — is what bound the answer. Caller holds the flow lock.
func (cn *Conn) txHeadroom(f *flowstate.Flow) (int, bool) {
	free := f.TxBuf.Free()
	g := cn.ctx.stack.Eng.Governor()
	if g == nil {
		return free, false
	}
	grant := g.TxGrant()
	if grant <= 0 {
		return free, false
	}
	room := int(grant) - f.TxBuf.Used()
	if room < 0 {
		room = 0
	}
	if room < free {
		return room, true
	}
	return free, false
}

// txReady is the lock-free wait condition for blocked senders: space in
// the transmit buffer that the governor's grant (when clamping) still
// permits using.
func (cn *Conn) txReady() bool {
	f := cn.flow
	if f.TxBuf.Free() <= 0 {
		return false
	}
	if g := cn.ctx.stack.Eng.Governor(); g != nil {
		if grant := g.TxGrant(); grant > 0 && int64(f.TxBuf.Used()) >= grant {
			return false
		}
	}
	return true
}

// noteClamp counts one send bound by the rung-3 TX clamp.
func (cn *Conn) noteClamp() {
	if g := cn.ctx.stack.Eng.Governor(); g != nil {
		g.NoteShed(resource.LevelClampTx)
	}
}

// Send writes all of p to the connection, blocking while the transmit
// buffer is full. A zero timeout waits forever.
func (cn *Conn) Send(p []byte, timeout time.Duration) (int, error) {
	if cn.closed {
		return 0, ErrClosed
	}
	sent := 0
	tm := cn.ctx.stack.Telem
	for sent < len(p) {
		if cn.aborted.Load() {
			return sent, cn.resetErr()
		}
		if cn.peerClosed.Load() {
			return sent, ErrClosed
		}
		f := cn.flow
		t0, timed := cn.copyTimer(tm)
		f.Lock()
		free, clamped := cn.txHeadroom(f)
		n := len(p) - sent
		if n > free {
			n = free
		}
		if n > 0 {
			f.TxBuf.Write(p[sent : sent+n])
		}
		f.Unlock()
		if n > 0 {
			sent += n
			chargeCopy(tm, t0, timed)
			f.Touch(cn.ctx.stack.Eng.CoarseNanos())
			if f.Rec != nil {
				f.Rec.Record(telemetry.FEAppSend, 0, 0, uint32(n), 0)
			}
			// Inform the fast path (issue a TX command on the context
			// queue, §3.1); fall back to a direct kick if the command
			// ring is full — the payload is already in the buffer.
			if !cn.ctx.stack.Eng.PushTxCmd(cn.ctx.fp, fastpath.TxCmd{Op: fastpath.OpTx, Flow: f, Bytes: uint32(n)}) {
				cn.ctx.stack.Eng.KickFlow(f)
			}
			continue
		}
		if clamped {
			cn.noteClamp()
		}
		// Buffer (or, under pressure, the governor's grant) exhausted:
		// wait for acknowledgements to free space — deadline-bounded
		// blocking on a buffer grant when the clamp is what binds.
		err := cn.ctx.wait(func() bool {
			return cn.aborted.Load() || cn.peerClosed.Load() || cn.txReady()
		}, timeout)
		if err != nil {
			if err == ErrTimeout && clamped {
				return sent, ErrBackpressure
			}
			return sent, err
		}
	}
	return sent, nil
}

// Recv reads up to len(p) bytes, blocking until at least one byte (or
// EOF) is available. A zero timeout waits forever.
func (cn *Conn) Recv(p []byte, timeout time.Duration) (int, error) {
	if cn.closed {
		return 0, ErrClosed
	}
	for {
		n := cn.recvNoWait(p)
		if n > 0 {
			return n, nil
		}
		if cn.aborted.Load() {
			// Already-buffered data was delivered above; past that, the
			// stream is broken.
			return 0, cn.resetErr()
		}
		if cn.peerClosed.Load() {
			return 0, io.EOF
		}
		err := cn.ctx.wait(func() bool {
			return cn.aborted.Load() || cn.peerClosed.Load() || cn.flow.RxBuf.Used() > 0
		}, timeout)
		if err != nil {
			return 0, err
		}
	}
}

// SendNoWait writes as much of p as currently fits in the transmit
// buffer without blocking. It returns ErrWouldBlock when nothing fits
// (pair with Poller.MarkWriteInterest to learn when space frees).
func (cn *Conn) SendNoWait(p []byte) (int, error) {
	if cn.aborted.Load() {
		return 0, cn.resetErr()
	}
	if cn.closed || cn.peerClosed.Load() {
		return 0, ErrClosed
	}
	f := cn.flow
	f.Lock()
	free, clamped := cn.txHeadroom(f)
	n := len(p)
	if n > free {
		n = free
	}
	if n > 0 {
		f.TxBuf.Write(p[:n])
	}
	f.Unlock()
	if n == 0 {
		if clamped {
			// The governor's grant, not buffer fullness, refused the
			// send: surface typed backpressure so the caller sheds load.
			cn.noteClamp()
			return 0, ErrBackpressure
		}
		return 0, ErrWouldBlock
	}
	f.Touch(cn.ctx.stack.Eng.CoarseNanos())
	if !cn.ctx.stack.Eng.PushTxCmd(cn.ctx.fp, fastpath.TxCmd{Op: fastpath.OpTx, Flow: f, Bytes: uint32(n)}) {
		cn.ctx.stack.Eng.KickFlow(f)
	}
	return n, nil
}

// RecvNoWait reads whatever is immediately available (0 if none) — part
// of the low-level API.
func (cn *Conn) RecvNoWait(p []byte) int {
	cn.ctx.dispatch()
	return cn.recvNoWait(p)
}

func (cn *Conn) recvNoWait(p []byte) int {
	f := cn.flow
	tm := cn.ctx.stack.Telem
	t0, timed := cn.copyTimer(tm)
	f.Lock()
	n := f.RxBuf.Read(p)
	f.Unlock()
	if n > 0 {
		chargeCopy(tm, t0, timed)
		// An app draining buffered data is active even if no new packets
		// arrive; keep it off the idle-reclaim rung's victim list.
		f.Touch(cn.ctx.stack.Eng.CoarseNanos())
		if f.Rec != nil {
			f.Rec.Record(telemetry.FEAppRecv, 0, 0, uint32(n), 0)
		}
		cn.noteConsumed(n)
	}
	return n
}

// noteConsumed sends a window update once the application has freed a
// substantial fraction of the receive buffer, so a sender blocked on
// flow control resumes (TCP window update).
func (cn *Conn) noteConsumed(n int) {
	cn.consumedSinceUpdate += n
	if cn.consumedSinceUpdate >= cn.flow.RxBuf.Size()/4 {
		cn.consumedSinceUpdate = 0
		cn.ctx.stack.Eng.SendWindowUpdate(cn.flow)
	}
}

// Buffered returns the bytes currently readable.
func (cn *Conn) Buffered() int { return cn.flow.RxBuf.Used() }

// TxFree returns the writable transmit-buffer space.
func (cn *Conn) TxFree() int { return cn.flow.TxBuf.Free() }

// PeerClosed reports whether the remote side has closed (after
// dispatching pending events).
func (cn *Conn) PeerClosed() bool {
	cn.ctx.dispatch()
	return cn.peerClosed.Load()
}

// Aborted reports whether the connection failed (RST received or
// retransmission budget exhausted), after dispatching pending events.
func (cn *Conn) Aborted() bool {
	cn.ctx.dispatch()
	return cn.aborted.Load()
}

// SendZeroCopy hands the caller writable spans of the transmit buffer
// (fill returns the byte count actually produced), then notifies the
// fast path — the zero-copy variant of Send enabled by the shared
// payload-buffer design: the application assembles its message in the
// very memory the fast path segments from. Returns the bytes committed
// (possibly 0 when the buffer is full; callers may Send-style block via
// the poller's write interest).
func (cn *Conn) SendZeroCopy(max int, fill func(first, second []byte) int) (int, error) {
	if cn.aborted.Load() {
		return 0, cn.resetErr()
	}
	if cn.closed {
		return 0, ErrClosed
	}
	if cn.peerClosed.Load() {
		return 0, ErrClosed
	}
	f := cn.flow
	f.Lock()
	if room, clamped := cn.txHeadroom(f); clamped && max > room {
		max = room // rung-3 clamp bounds the reservation
	}
	a, b := f.TxBuf.ReserveHead(max)
	n := 0
	if len(a)+len(b) > 0 {
		n = fill(a, b)
		if n < 0 || n > len(a)+len(b) {
			f.Unlock()
			panic("libtas: SendZeroCopy fill returned invalid count")
		}
		f.TxBuf.AdvanceHead(n)
	}
	f.Unlock()
	if n > 0 {
		f.Touch(cn.ctx.stack.Eng.CoarseNanos())
		if !cn.ctx.stack.Eng.PushTxCmd(cn.ctx.fp, fastpath.TxCmd{Op: fastpath.OpTx, Flow: f, Bytes: uint32(n)}) {
			cn.ctx.stack.Eng.KickFlow(f)
		}
	}
	return n, nil
}

// RecvZeroCopy exposes up to max readable bytes in place (consume
// returns how many bytes the application is done with). The zero-copy
// variant of Recv: the fast path deposited the payload directly into
// this buffer and the application reads it without another copy.
func (cn *Conn) RecvZeroCopy(max int, consume func(first, second []byte) int) int {
	f := cn.flow
	f.Lock()
	a, b := f.RxBuf.PeekTail(max)
	n := 0
	if len(a)+len(b) > 0 {
		n = consume(a, b)
		if n < 0 || n > len(a)+len(b) {
			f.Unlock()
			panic("libtas: RecvZeroCopy consume returned invalid count")
		}
		f.RxBuf.Release(n)
	}
	f.Unlock()
	if n > 0 {
		cn.noteConsumed(n)
	}
	return n
}

// ConnStats is a snapshot of the flow's fast-path state counters.
type ConnStats struct {
	RTTMicros    uint32 // smoothed RTT estimate (rtt_est)
	FastRexmits  uint8  // fast retransmits since the last slow-path poll
	RxBuffered   int    // bytes readable
	TxQueued     int    // bytes written but not yet acknowledged
	TxUnsent     int    // of those, not yet transmitted
	RxBufSize    int
	TxBufSize    int
	PeerWindowKB uint16
}

// Stats snapshots the connection's per-flow counters (Table 3 state).
func (cn *Conn) Stats() ConnStats {
	f := cn.flow
	f.Lock()
	st := ConnStats{
		RTTMicros:    f.RTTEst,
		FastRexmits:  f.CntFrexmits,
		RxBuffered:   f.RxBuf.Used(),
		TxQueued:     f.TxBuf.Used(),
		TxUnsent:     f.TxPending(),
		RxBufSize:    f.RxBuf.Size(),
		TxBufSize:    f.TxBuf.Size(),
		PeerWindowKB: f.Window,
	}
	f.Unlock()
	return st
}

// ResizeBuffers grows the connection's payload buffers at runtime via a
// slow-path management command (§4.1 future work implemented).
func (cn *Conn) ResizeBuffers(rxSize, txSize int) {
	cn.ctx.stack.Slow().ResizeBuffers(cn.flow, rxSize, txSize)
}

// Rebind moves the connection to another context of the same stack —
// the handoff pattern for accept loops: the listener's context accepts,
// then each connection moves to its own per-goroutine context. After
// Rebind, the connection must only be used from the new context's
// goroutine. Events still queued in the old context are ignored there
// (Recv/Send poll the payload buffers directly).
func (cn *Conn) Rebind(newCtx *Context) {
	old := cn.ctx
	if old == newCtx {
		return
	}
	newCtx.mu.Lock()
	cn2 := cn // keep slot identity
	newCtx.conns = append(newCtx.conns, cn2)
	opaque := uint64(len(newCtx.conns) - 1)
	newCtx.mu.Unlock()

	old.mu.Lock()
	for i, c := range old.conns {
		if c == cn {
			old.conns[i] = nil
		}
	}
	old.mu.Unlock()

	cn.flow.Lock()
	cn.flow.Context = uint16(newCtx.fp.ID)
	cn.flow.Opaque = opaque
	cn.flow.Unlock()
	cn.ctx = newCtx
}

// Close initiates teardown via the slow path (graceful FIN after the
// transmit buffer drains). Closing a connection that was already reset
// (RST received, retransmission budget exhausted, or the app context
// reaped) is a local-state no-op and reports ErrReset; there is nothing
// left to tear down gracefully. Close is idempotent: repeat calls
// return the same result as the first.
func (cn *Conn) Close() error {
	cn.ctx.dispatch()
	if !cn.aborted.Load() {
		// The abort event never reaches a reaped (dead) context, so also
		// consult the authoritative per-flow state.
		cn.flow.Lock()
		cn.aborted.Store(cn.flow.Aborted)
		if cn.flow.PeerDead {
			cn.peerDead.Store(true)
		}
		cn.flow.Unlock()
	}
	if cn.aborted.Load() {
		cn.closed = true
		return cn.resetErr()
	}
	if cn.closed {
		return nil
	}
	cn.closed = true
	cn.ctx.stack.Slow().Close(cn.flow)
	return nil
}
