package libtas

import (
	"time"
)

// Ready describes one readiness notification from a Poller, the epoll
// analogue over TAS context queues: which connection, and what it is
// ready for.
type Ready struct {
	Conn     *Conn
	Readable bool // bytes available in the receive buffer (or EOF)
	Writable bool // transmit-buffer space available
	Closed   bool // peer closed
}

// Poller multiplexes readiness across the connections of one context —
// the paper's epoll() over context RX queues (§3.1 Figure 1). Like the
// context itself, a Poller is single-goroutine.
type Poller struct {
	ctx   *Context
	conns []*Conn

	// lastTxFree remembers transmit-space observations so Writable
	// edges fire only when space transitions from exhausted.
	wantWrite map[*Conn]bool
}

// NewPoller creates a poller on the context.
func (c *Context) NewPoller() *Poller {
	return &Poller{ctx: c, wantWrite: make(map[*Conn]bool)}
}

// Add registers a connection for readiness notifications. The
// connection must belong to the poller's context.
func (p *Poller) Add(cn *Conn) {
	if cn.ctx != p.ctx {
		panic("libtas: poller and connection belong to different contexts")
	}
	p.conns = append(p.conns, cn)
}

// Remove unregisters a connection.
func (p *Poller) Remove(cn *Conn) {
	for i, c := range p.conns {
		if c == cn {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			return
		}
	}
}

// MarkWriteInterest requests a Writable notification for a connection
// whose Send would currently block.
func (p *Poller) MarkWriteInterest(cn *Conn) { p.wantWrite[cn] = true }

// poll scans registered connections for readiness.
func (p *Poller) poll(out []Ready) int {
	p.ctx.dispatch()
	n := 0
	for _, cn := range p.conns {
		if n == len(out) {
			break
		}
		var r Ready
		r.Conn = cn
		if cn.flow != nil && cn.flow.RxBuf.Used() > 0 {
			r.Readable = true
		}
		if cn.peerClosed.Load() {
			r.Closed = true
			r.Readable = true // unblock readers so they observe EOF
		}
		if p.wantWrite[cn] && cn.flow != nil && cn.flow.TxBuf.Free() > 0 {
			r.Writable = true
			delete(p.wantWrite, cn)
		}
		if r.Readable || r.Writable || r.Closed {
			out[n] = r
			n++
		}
	}
	return n
}

// Wait blocks until at least one registered connection is ready (or the
// timeout elapses; 0 = forever), filling out and returning the count.
func (p *Poller) Wait(out []Ready, timeout time.Duration) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if n := p.poll(out); n > 0 {
			return n, nil
		}
		ch := p.ctx.fp.Sleep()
		if n := p.poll(out); n > 0 {
			p.ctx.fp.Awake()
			return n, nil
		}
		if deadline.IsZero() {
			<-ch
		} else {
			d := time.Until(deadline)
			if d <= 0 {
				p.ctx.fp.Awake()
				return 0, ErrTimeout
			}
			select {
			case <-ch:
			case <-time.After(d):
				p.ctx.fp.Awake()
				return 0, ErrTimeout
			}
		}
		p.ctx.fp.Awake()
	}
}
