// Package protocol implements the wire protocols TAS speaks: Ethernet II,
// IPv4 (with ECN), and TCP with the options the fast path uses (MSS and
// timestamps). Packets have two representations: the parsed Packet struct
// used throughout the simulator and fast path, and the byte encoding used
// by the live engine and by interoperability tests. Marshal and Parse
// convert between them and are exact inverses for well-formed packets.
package protocol

import (
	"errors"
	"fmt"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the MAC in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 is an IPv4 address in host representation.
type IPv4 uint32

// MakeIPv4 builds an address from its four octets.
func MakeIPv4(a, b, c, d byte) IPv4 {
	return IPv4(a)<<24 | IPv4(b)<<16 | IPv4(c)<<8 | IPv4(d)
}

// String formats the address in dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// TCPFlags is the TCP flag byte plus NS (we only use the low 8 bits).
type TCPFlags uint8

// TCP header flags.
const (
	FlagFIN TCPFlags = 1 << 0
	FlagSYN TCPFlags = 1 << 1
	FlagRST TCPFlags = 1 << 2
	FlagPSH TCPFlags = 1 << 3
	FlagACK TCPFlags = 1 << 4
	FlagURG TCPFlags = 1 << 5
	FlagECE TCPFlags = 1 << 6 // ECN echo
	FlagCWR TCPFlags = 1 << 7 // congestion window reduced
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// String lists the set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"},
		{FlagACK, "ACK"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	s := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// ECN is the IP-header ECN codepoint.
type ECN uint8

// IP ECN codepoints.
const (
	ECNNotECT ECN = 0 // not ECN-capable transport
	ECNECT1   ECN = 1 // ECN-capable transport (1)
	ECNECT0   ECN = 2 // ECN-capable transport (0)
	ECNCE     ECN = 3 // congestion experienced
)

// Protocol numbers and sizes.
const (
	EtherTypeIPv4 = 0x0800
	IPProtoTCP    = 6

	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20 // without options

	// TSOptLen is the length of the timestamp option including the two
	// leading NOPs used for alignment (NOP NOP kind len val ecr).
	TSOptLen = 12
	// MSSOptLen is the length of the MSS option.
	MSSOptLen = 4

	// DefaultMSS is the payload MSS for a standard 1500-byte MTU with
	// timestamps: 1500 - 20 (IP) - 20 (TCP) - 12 (TS option).
	DefaultMSS = 1448

	// MTU is the IP MTU assumed throughout (datacenter default, no
	// jumbo frames, never fragmented per the paper).
	MTU = 1500
)

// Errors returned by Parse.
var (
	ErrTruncated   = errors.New("protocol: truncated packet")
	ErrNotIPv4     = errors.New("protocol: not an IPv4 packet")
	ErrNotTCP      = errors.New("protocol: not a TCP segment")
	ErrBadChecksum = errors.New("protocol: bad checksum")
	ErrBadHeader   = errors.New("protocol: malformed header")
	ErrFragment    = errors.New("protocol: fragmented packet")
)
