package protocol

import "fmt"

// Packet is the parsed representation of an Ethernet/IPv4/TCP frame. It is
// the unit of exchange inside the network simulator and the argument to
// the fast-path processing functions. For large-scale simulations the
// payload may be elided: set PayloadLen and leave Payload nil; the two
// are kept consistent by DataLen.
type Packet struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16

	Seq, Ack uint32
	Flags    TCPFlags
	Window   uint16

	// TCP timestamp option (present when HasTS).
	HasTS        bool
	TSVal, TSEcr uint32

	// MSS option (SYN segments only; 0 = absent).
	MSSOpt uint16

	// ECN is the IP-header codepoint. Switch queues set ECNCE above
	// their marking threshold when the packet is ECN-capable.
	ECN ECN

	// Payload carries real bytes (live mode, loopback tests). When nil,
	// PayloadLen gives the simulated payload size.
	Payload    []byte
	PayloadLen int
}

// DataLen returns the TCP payload length in bytes.
func (p *Packet) DataLen() int {
	if p.Payload != nil {
		return len(p.Payload)
	}
	return p.PayloadLen
}

// tcpHeaderLen returns the TCP header length including options.
func (p *Packet) tcpHeaderLen() int {
	n := TCPHeaderLen
	if p.MSSOpt != 0 {
		n += MSSOptLen
	}
	if p.HasTS {
		n += TSOptLen
	}
	return n
}

// WireLen returns the total frame length on the wire (Ethernet header
// through payload; excludes FCS/preamble).
func (p *Packet) WireLen() int {
	return EthHeaderLen + IPv4HeaderLen + p.tcpHeaderLen() + p.DataLen()
}

// SeqEnd returns the sequence number just past this segment's data,
// counting SYN and FIN as one unit of sequence space each.
func (p *Packet) SeqEnd() uint32 {
	e := p.Seq + uint32(p.DataLen())
	if p.Flags.Has(FlagSYN) {
		e++
	}
	if p.Flags.Has(FlagFIN) {
		e++
	}
	return e
}

// FlowKey identifies a connection from the receiver's point of view:
// (local IP, local port, remote IP, remote port).
type FlowKey struct {
	LocalIP    IPv4
	LocalPort  uint16
	RemoteIP   IPv4
	RemotePort uint16
}

// Reverse returns the key of the same connection from the peer's side.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{LocalIP: k.RemoteIP, LocalPort: k.RemotePort, RemoteIP: k.LocalIP, RemotePort: k.LocalPort}
}

// String formats the key as local->remote.
func (k FlowKey) String() string {
	return fmt.Sprintf("%v:%d->%v:%d", k.LocalIP, k.LocalPort, k.RemoteIP, k.RemotePort)
}

// RxKey returns the FlowKey for an incoming packet (p's destination is
// local).
func (p *Packet) RxKey() FlowKey {
	return FlowKey{LocalIP: p.DstIP, LocalPort: p.DstPort, RemoteIP: p.SrcIP, RemotePort: p.SrcPort}
}

// Clone returns a deep copy of the packet (payload included).
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return &q
}

// String renders a compact human-readable summary.
func (p *Packet) String() string {
	return fmt.Sprintf("%v:%d>%v:%d %v seq=%d ack=%d win=%d len=%d",
		p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, p.Flags, p.Seq, p.Ack, p.Window, p.DataLen())
}

// MACForIPv4 derives a stable locally-administered MAC address from an
// IPv4 address — the address scheme used throughout the simulated and
// live fabrics (the slow path's ARP table is this function).
func MACForIPv4(ip IPv4) MAC {
	return MAC{0x02, 0, byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// FlowHash is the hash used for receive-side scaling (RSS). It is a
// symmetric-enough 4-tuple hash (FNV-1a over the canonicalized tuple) so
// that both directions of a connection map to the same fast-path core,
// mirroring the symmetric Toeplitz configuration the paper relies on.
func FlowHash(a IPv4, ap uint16, b IPv4, bp uint16) uint32 {
	// Canonicalize so hash(src,dst) == hash(dst,src).
	if a > b || (a == b && ap > bp) {
		a, b = b, a
		ap, bp = bp, ap
	}
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint32(a))
	mix(uint32(b))
	mix(uint32(ap)<<16 | uint32(bp))
	return h
}

// Hash returns the RSS hash of the packet's 4-tuple.
func (p *Packet) Hash() uint32 {
	return FlowHash(p.SrcIP, p.SrcPort, p.DstIP, p.DstPort)
}
