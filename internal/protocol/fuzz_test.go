package protocol

import (
	"bytes"
	"errors"
	"testing"
)

// fixHeaderChecksums recomputes the IP and TCP checksums of a mutated
// frame in place when the frame is large enough to carry them, so the
// fuzzer can reach the post-checksum parsing logic (offsets, options,
// fragment bits) instead of bouncing off ErrBadChecksum.
func fixHeaderChecksums(buf []byte) {
	if len(buf) < EthHeaderLen+IPv4HeaderLen {
		return
	}
	ip := buf[EthHeaderLen:]
	ihl := int(ip[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return
	}
	be.PutUint16(ip[10:], 0)
	be.PutUint16(ip[10:], Checksum(ip[:ihl], 0))
	ipTotal := int(be.Uint16(ip[2:]))
	if ipTotal < ihl+TCPHeaderLen || ipTotal > len(ip) {
		return
	}
	tcp := ip[ihl:ipTotal]
	src := IPv4(be.Uint32(ip[12:]))
	dst := IPv4(be.Uint32(ip[16:]))
	be.PutUint16(tcp[16:], 0)
	be.PutUint16(tcp[16:], Checksum(tcp, pseudoHeaderSum(src, dst, len(tcp))))
}

// FuzzParse hurls raw frames at the wire parser. The properties under
// test: no input panics or over-reads; every accepted packet
// re-marshals into a frame the parser accepts again with identical
// header fields; rejected inputs map to the package's sentinel errors.
func FuzzParse(f *testing.F) {
	f.Add(Marshal(&Packet{
		SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 40000, DstPort: 7000,
		Seq: 1, Ack: 2, Flags: FlagACK, Window: 64,
	}))
	f.Add(Marshal(&Packet{
		SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1, DstPort: 2,
		Flags: FlagSYN, MSSOpt: 1448, HasTS: true, TSVal: 7, TSEcr: 9,
	}))
	f.Add(Marshal(&Packet{
		SrcIP: 0xc0a80101, DstIP: 0xc0a80102, SrcPort: 9, DstPort: 10,
		Flags: FlagACK | FlagPSH, Payload: []byte("adversarial"),
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Pass 1: raw bytes — parser must never panic.
		if p, err := Parse(data); err == nil {
			checkReparse(t, p)
		}
		// Pass 2: valid checksums — exercises offset/option/fragment
		// validation behind the checksum gate.
		buf := bytes.Clone(data)
		fixHeaderChecksums(buf)
		p, err := Parse(buf)
		if err != nil {
			for _, known := range []error{ErrTruncated, ErrNotIPv4, ErrNotTCP, ErrBadChecksum, ErrBadHeader, ErrFragment} {
				if errors.Is(err, known) {
					return
				}
			}
			t.Fatalf("Parse returned an unknown error: %v", err)
		}
		checkReparse(t, p)
	})
}

// checkReparse asserts Marshal∘Parse is stable on an accepted packet.
func checkReparse(t *testing.T, p *Packet) {
	t.Helper()
	if p.PayloadLen != len(p.Payload) {
		t.Fatalf("PayloadLen %d != len(Payload) %d", p.PayloadLen, len(p.Payload))
	}
	q, err := Parse(Marshal(p))
	if err != nil {
		t.Fatalf("re-marshaled packet failed to parse: %v", err)
	}
	if q.SrcIP != p.SrcIP || q.DstIP != p.DstIP ||
		q.SrcPort != p.SrcPort || q.DstPort != p.DstPort ||
		q.Seq != p.Seq || q.Ack != p.Ack || q.Flags != p.Flags ||
		q.Window != p.Window || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("re-parse mismatch: %+v vs %+v", q, p)
	}
}
