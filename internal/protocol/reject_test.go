package protocol

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// validFrame marshals a correct ACK-with-payload frame the mutators
// below corrupt one field at a time.
func validFrame() []byte {
	return Marshal(&Packet{
		SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 40000, DstPort: 7000,
		Seq: 100, Ack: 200, Flags: FlagACK | FlagPSH, Window: 64,
		HasTS: true, TSVal: 1, TSEcr: 2, Payload: []byte("hello"),
	})
}

// refix recomputes both checksums after a header mutation so the test
// reaches the validation under scrutiny instead of ErrBadChecksum.
func refix(buf []byte) []byte {
	fixHeaderChecksums(buf)
	return buf
}

// TestParseRejectsMalformed is the table of adversarial frames the
// parser must reject with the right sentinel — truncations, bad
// offsets, absurd lengths, fragments — distilled from the FuzzParse
// corpus.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		make func() []byte
		want error
	}{
		{"empty", func() []byte { return nil }, ErrTruncated},
		{"eth header only", func() []byte { return validFrame()[:EthHeaderLen] }, ErrTruncated},
		{"cut mid tcp header", func() []byte { return validFrame()[:EthHeaderLen+IPv4HeaderLen+10] }, ErrTruncated},
		{"ip version 6 nibble", func() []byte {
			b := validFrame()
			b[EthHeaderLen] = 0x65
			return refix(b)
		}, ErrNotIPv4},
		{"ihl below minimum", func() []byte {
			b := validFrame()
			b[EthHeaderLen] = 0x43 // IHL 3 (12 bytes)
			return refix(b)
		}, ErrBadHeader},
		{"ihl beyond frame", func() []byte {
			// Minimal 54-byte frame: long enough to pass the outer
			// truncation gate, too short for a 60-byte IP header.
			b := Marshal(&Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Flags: FlagACK})
			b[EthHeaderLen] = 0x4f // IHL 15 (60 bytes)
			return refix(b)
		}, ErrBadHeader},
		{"ip total length absurd", func() []byte {
			b := validFrame()
			be.PutUint16(b[EthHeaderLen+2:], 0xffff)
			return refix(b)
		}, ErrTruncated},
		{"ip total length below ihl", func() []byte {
			b := validFrame()
			be.PutUint16(b[EthHeaderLen+2:], 8)
			return refix(b)
		}, ErrTruncated},
		{"more-fragments bit", func() []byte {
			b := validFrame()
			be.PutUint16(b[EthHeaderLen+6:], 0x2000)
			return refix(b)
		}, ErrFragment},
		{"nonzero fragment offset", func() []byte {
			b := validFrame()
			be.PutUint16(b[EthHeaderLen+6:], 0x0007)
			return refix(b)
		}, ErrFragment},
		{"tcp offset below minimum", func() []byte {
			b := validFrame()
			b[EthHeaderLen+IPv4HeaderLen+12] = 4 << 4 // 16-byte header
			return refix(b)
		}, ErrBadHeader},
		{"tcp offset beyond segment", func() []byte {
			b := validFrame()
			b[EthHeaderLen+IPv4HeaderLen+12] = 15 << 4 // 60-byte header, segment is shorter
			return refix(b)
		}, ErrBadHeader},
		{"option length zero", func() []byte {
			b := validFrame()
			opt := b[EthHeaderLen+IPv4HeaderLen+TCPHeaderLen:]
			opt[0], opt[1] = 8, 0 // TS option claiming zero length
			return refix(b)
		}, ErrBadHeader},
		{"option length overruns header", func() []byte {
			b := validFrame()
			opt := b[EthHeaderLen+IPv4HeaderLen+TCPHeaderLen:]
			opt[0], opt[1] = 8, 200
			return refix(b)
		}, ErrBadHeader},
		{"corrupt ip checksum", func() []byte {
			b := validFrame()
			b[EthHeaderLen+10] ^= 0xff
			return b
		}, ErrBadChecksum},
		{"corrupt payload byte", func() []byte {
			b := validFrame()
			b[len(b)-1] ^= 0xff
			return b
		}, ErrBadChecksum},
		{"wrong ethertype", func() []byte {
			b := validFrame()
			be.PutUint16(b[12:], 0x86dd) // IPv6
			return b
		}, ErrNotIPv4},
		{"not tcp", func() []byte {
			b := validFrame()
			b[EthHeaderLen+9] = 17 // UDP
			return refix(b)
		}, ErrNotTCP},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.make())
			if !errors.Is(err, tc.want) {
				t.Fatalf("Parse = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestFuzzCorpusStaysRejectedOrParsed replays the committed FuzzParse
// seed corpus through the same properties the fuzzer checks, so the
// regression inputs are exercised even when CI runs without -fuzz.
func TestFuzzCorpusStaysRejectedOrParsed(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParse")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("committed fuzz corpus is empty")
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data, err := decodeCorpus(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if p, perr := Parse(data); perr == nil {
			checkReparse(t, p)
		}
		buf := append([]byte(nil), data...)
		fixHeaderChecksums(buf)
		if p, perr := Parse(buf); perr == nil {
			checkReparse(t, p)
		}
	}
}

// decodeCorpus parses the "go test fuzz v1" single-[]byte corpus file
// format.
func decodeCorpus(s string) ([]byte, error) {
	lines := strings.SplitN(strings.TrimSpace(s), "\n", 2)
	if len(lines) != 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, errors.New("not a fuzz v1 corpus file")
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "[]byte(")
	body = strings.TrimSuffix(body, ")")
	return []byte(mustUnquote(body)), nil
}

func mustUnquote(s string) string {
	out, err := strconv.Unquote(s)
	if err != nil {
		panic(err)
	}
	return out
}
