package protocol

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		SrcMAC: MAC{0x02, 0, 0, 0, 0, 1}, DstMAC: MAC{0x02, 0, 0, 0, 0, 2},
		SrcIP: MakeIPv4(10, 0, 0, 1), DstIP: MakeIPv4(10, 0, 0, 2),
		SrcPort: 40000, DstPort: 8080,
		Seq: 1000, Ack: 2000,
		Flags: FlagACK | FlagPSH, Window: 65535,
		HasTS: true, TSVal: 12345, TSEcr: 67890,
		ECN:     ECNECT0,
		Payload: []byte("hello, TAS"),
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	p := samplePacket()
	buf := Marshal(p)
	q, err := Parse(buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.SrcIP != p.SrcIP || q.DstIP != p.DstIP || q.SrcPort != p.SrcPort || q.DstPort != p.DstPort {
		t.Fatal("addressing mismatch")
	}
	if q.Seq != p.Seq || q.Ack != p.Ack || q.Flags != p.Flags || q.Window != p.Window {
		t.Fatal("TCP field mismatch")
	}
	if !q.HasTS || q.TSVal != p.TSVal || q.TSEcr != p.TSEcr {
		t.Fatal("timestamp option mismatch")
	}
	if q.ECN != p.ECN {
		t.Fatal("ECN mismatch")
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q", q.Payload)
	}
	if q.SrcMAC != p.SrcMAC || q.DstMAC != p.DstMAC {
		t.Fatal("MAC mismatch")
	}
}

func TestMarshalParseSYNWithMSS(t *testing.T) {
	p := samplePacket()
	p.Flags = FlagSYN
	p.MSSOpt = DefaultMSS
	p.Payload = nil
	p.PayloadLen = 0
	q, err := Parse(Marshal(p))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.MSSOpt != DefaultMSS {
		t.Fatalf("MSS = %d, want %d", q.MSSOpt, DefaultMSS)
	}
	if !q.Flags.Has(FlagSYN) {
		t.Fatal("SYN lost")
	}
	if q.DataLen() != 0 {
		t.Fatalf("payload len = %d, want 0", q.DataLen())
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	p := samplePacket()
	buf := Marshal(p)
	// Flip a payload byte: TCP checksum must fail.
	buf[len(buf)-1] ^= 0xff
	if _, err := Parse(buf); err != ErrBadChecksum {
		t.Fatalf("corrupt payload: err = %v, want ErrBadChecksum", err)
	}
	// Flip an IP header byte.
	buf = Marshal(p)
	buf[EthHeaderLen+8] ^= 0xff // TTL
	if _, err := Parse(buf); err != ErrBadChecksum {
		t.Fatalf("corrupt IP header: err = %v, want ErrBadChecksum", err)
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	buf := Marshal(samplePacket())
	for _, n := range []int{0, 10, EthHeaderLen, EthHeaderLen + 5, EthHeaderLen + IPv4HeaderLen + 3} {
		if _, err := Parse(buf[:n]); err == nil {
			t.Errorf("Parse of %d-byte prefix should fail", n)
		}
	}
}

func TestParseRejectsNonIPv4(t *testing.T) {
	buf := Marshal(samplePacket())
	be.PutUint16(buf[12:], 0x0806) // ARP ethertype
	if _, err := Parse(buf); err != ErrNotIPv4 {
		t.Fatalf("err = %v, want ErrNotIPv4", err)
	}
}

func TestParseRejectsNonTCP(t *testing.T) {
	p := samplePacket()
	buf := Marshal(p)
	ip := buf[EthHeaderLen:]
	ip[9] = 17 // UDP
	// refresh IP checksum
	be.PutUint16(ip[10:], 0)
	be.PutUint16(ip[10:], Checksum(ip[:IPv4HeaderLen], 0))
	if _, err := Parse(buf); err != ErrNotTCP {
		t.Fatalf("err = %v, want ErrNotTCP", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0xab}
	if got := Checksum(data, 0); got != ^uint16(0xab00) {
		t.Fatalf("odd-length checksum = %#x", got)
	}
}

func TestElidedPayloadMarshal(t *testing.T) {
	p := samplePacket()
	p.Payload = nil
	p.PayloadLen = 100
	buf := Marshal(p)
	q, err := Parse(buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.DataLen() != 100 {
		t.Fatalf("parsed payload len = %d, want 100", q.DataLen())
	}
}

func TestWireLen(t *testing.T) {
	p := samplePacket() // TS option only
	want := EthHeaderLen + IPv4HeaderLen + TCPHeaderLen + TSOptLen + len(p.Payload)
	if p.WireLen() != want {
		t.Fatalf("WireLen = %d, want %d", p.WireLen(), want)
	}
	if got := len(Marshal(p)); got != want {
		t.Fatalf("Marshal len = %d, want %d", got, want)
	}
}

func TestSeqEnd(t *testing.T) {
	p := &Packet{Seq: 100, PayloadLen: 50}
	if p.SeqEnd() != 150 {
		t.Fatalf("SeqEnd = %d", p.SeqEnd())
	}
	p.Flags = FlagSYN
	if p.SeqEnd() != 151 {
		t.Fatalf("SYN SeqEnd = %d", p.SeqEnd())
	}
	p.Flags = FlagSYN | FlagFIN
	if p.SeqEnd() != 152 {
		t.Fatalf("SYN|FIN SeqEnd = %d", p.SeqEnd())
	}
	// Wraparound.
	p = &Packet{Seq: 0xffffffff, PayloadLen: 2}
	if p.SeqEnd() != 1 {
		t.Fatalf("wrapped SeqEnd = %d", p.SeqEnd())
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{LocalIP: 1, LocalPort: 2, RemoteIP: 3, RemotePort: 4}
	r := k.Reverse()
	if r.LocalIP != 3 || r.LocalPort != 4 || r.RemoteIP != 1 || r.RemotePort != 2 {
		t.Fatalf("Reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse should be identity")
	}
}

func TestRxKey(t *testing.T) {
	p := samplePacket()
	k := p.RxKey()
	if k.LocalIP != p.DstIP || k.LocalPort != p.DstPort || k.RemoteIP != p.SrcIP || k.RemotePort != p.SrcPort {
		t.Fatalf("RxKey = %+v", k)
	}
}

func TestFlowHashSymmetric(t *testing.T) {
	f := func(a, b uint32, ap, bp uint16) bool {
		return FlowHash(IPv4(a), ap, IPv4(b), bp) == FlowHash(IPv4(b), bp, IPv4(a), ap)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowHashSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buckets := make([]int, 16)
	const n = 100000
	for i := 0; i < n; i++ {
		h := FlowHash(IPv4(rng.Uint32()), uint16(rng.Uint32()), MakeIPv4(10, 0, 0, 1), 8080)
		buckets[h%16]++
	}
	for i, c := range buckets {
		if c < n/16*8/10 || c > n/16*12/10 {
			t.Errorf("bucket %d has %d entries (uniform would be %d)", i, c, n/16)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	q.Payload[0] = 'X'
	q.Seq = 999
	if p.Payload[0] == 'X' || p.Seq == 999 {
		t.Fatal("Clone must not share state")
	}
}

func TestMarshalParseQuick(t *testing.T) {
	f := func(srcIP, dstIP uint32, sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte, ts bool, tsv, tse uint32) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := &Packet{
			SrcIP: IPv4(srcIP), DstIP: IPv4(dstIP),
			SrcPort: sp, DstPort: dp,
			Seq: seq, Ack: ack,
			Flags: TCPFlags(flags), Window: win,
			HasTS: ts, Payload: payload,
		}
		if ts {
			p.TSVal, p.TSEcr = tsv, tse
		}
		q, err := Parse(Marshal(p))
		if err != nil {
			return false
		}
		// Normalize for comparison: Parse sets PayloadLen and non-nil payload slice.
		q2 := *q
		q2.PayloadLen = 0
		p2 := *p
		p2.PayloadLen = 0
		if len(q.Payload) == 0 && len(p.Payload) == 0 {
			q2.Payload, p2.Payload = nil, nil
		}
		return reflect.DeepEqual(p2.Flags, q2.Flags) &&
			p2.Seq == q2.Seq && p2.Ack == q2.Ack && p2.Window == q2.Window &&
			p2.SrcIP == q2.SrcIP && p2.DstIP == q2.DstIP &&
			p2.SrcPort == q2.SrcPort && p2.DstPort == q2.DstPort &&
			p2.HasTS == q2.HasTS && p2.TSVal == q2.TSVal && p2.TSEcr == q2.TSEcr &&
			bytes.Equal(p2.Payload, q2.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("got %q", s)
	}
	if s := TCPFlags(0).String(); s != "none" {
		t.Fatalf("got %q", s)
	}
}

func TestAddrStrings(t *testing.T) {
	if s := MakeIPv4(192, 168, 1, 9).String(); s != "192.168.1.9" {
		t.Fatalf("IPv4.String = %q", s)
	}
	if s := (MAC{0xde, 0xad, 0xbe, 0xef, 0, 1}).String(); s != "de:ad:be:ef:00:01" {
		t.Fatalf("MAC.String = %q", s)
	}
}
