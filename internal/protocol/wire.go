package protocol

import "encoding/binary"

// be is the big-endian byte order used by all network headers.
var be = binary.BigEndian

// Checksum computes the Internet checksum (RFC 1071) over data with the
// given initial partial sum (pass 0 unless folding a pseudo-header).
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(be.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the TCP pseudo-header.
func pseudoHeaderSum(src, dst IPv4, tcpLen int) uint32 {
	var sum uint32
	sum += uint32(src >> 16)
	sum += uint32(src & 0xffff)
	sum += uint32(dst >> 16)
	sum += uint32(dst & 0xffff)
	sum += uint32(IPProtoTCP)
	sum += uint32(tcpLen)
	return sum
}

// Marshal encodes the packet into a freshly allocated wire-format frame.
// If the packet's payload is elided (Payload nil, PayloadLen > 0) the
// payload bytes are zero. IP and TCP checksums are computed.
func Marshal(p *Packet) []byte {
	buf := make([]byte, p.WireLen())
	MarshalInto(p, buf)
	return buf
}

// MarshalInto encodes the packet into buf, which must be at least
// p.WireLen() bytes. It returns the number of bytes written.
func MarshalInto(p *Packet, buf []byte) int {
	total := p.WireLen()
	if len(buf) < total {
		panic("protocol: buffer too small")
	}
	// Ethernet.
	copy(buf[0:6], p.DstMAC[:])
	copy(buf[6:12], p.SrcMAC[:])
	be.PutUint16(buf[12:], EtherTypeIPv4)

	// IPv4.
	ip := buf[EthHeaderLen:]
	ipTotal := total - EthHeaderLen
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = byte(p.ECN) & 0x3
	be.PutUint16(ip[2:], uint16(ipTotal))
	be.PutUint16(ip[4:], 0)      // identification
	be.PutUint16(ip[6:], 0x4000) // DF, no fragments (never fragmented in DC)
	ip[8] = 64                   // TTL
	ip[9] = IPProtoTCP
	be.PutUint16(ip[10:], 0) // checksum placeholder
	be.PutUint32(ip[12:], uint32(p.SrcIP))
	be.PutUint32(ip[16:], uint32(p.DstIP))
	be.PutUint16(ip[10:], Checksum(ip[:IPv4HeaderLen], 0))

	// TCP.
	tcp := ip[IPv4HeaderLen:]
	hlen := p.tcpHeaderLen()
	be.PutUint16(tcp[0:], p.SrcPort)
	be.PutUint16(tcp[2:], p.DstPort)
	be.PutUint32(tcp[4:], p.Seq)
	be.PutUint32(tcp[8:], p.Ack)
	tcp[12] = byte(hlen/4) << 4
	tcp[13] = byte(p.Flags)
	be.PutUint16(tcp[14:], p.Window)
	be.PutUint16(tcp[16:], 0) // checksum placeholder
	be.PutUint16(tcp[18:], 0) // urgent pointer

	// Options.
	opt := tcp[TCPHeaderLen:hlen]
	off := 0
	if p.MSSOpt != 0 {
		opt[off] = 2 // kind MSS
		opt[off+1] = 4
		be.PutUint16(opt[off+2:], p.MSSOpt)
		off += 4
	}
	if p.HasTS {
		opt[off] = 1 // NOP
		opt[off+1] = 1
		opt[off+2] = 8 // kind timestamps
		opt[off+3] = 10
		be.PutUint32(opt[off+4:], p.TSVal)
		be.PutUint32(opt[off+8:], p.TSEcr)
		off += 12
	}

	// Payload.
	data := tcp[hlen:]
	if p.Payload != nil {
		copy(data, p.Payload)
	}
	// else: leave zeroed (elided payload)

	tcpLen := hlen + p.DataLen()
	be.PutUint16(tcp[16:], Checksum(tcp[:tcpLen], pseudoHeaderSum(p.SrcIP, p.DstIP, tcpLen)))
	return total
}

// Parse decodes a wire-format frame into a Packet, verifying both the IP
// header checksum and the TCP checksum. The returned packet's Payload
// aliases buf.
func Parse(buf []byte) (*Packet, error) {
	if len(buf) < EthHeaderLen+IPv4HeaderLen+TCPHeaderLen {
		return nil, ErrTruncated
	}
	p := &Packet{}
	copy(p.DstMAC[:], buf[0:6])
	copy(p.SrcMAC[:], buf[6:12])
	if be.Uint16(buf[12:]) != EtherTypeIPv4 {
		return nil, ErrNotIPv4
	}
	ip := buf[EthHeaderLen:]
	if ip[0]>>4 != 4 {
		return nil, ErrNotIPv4
	}
	ihl := int(ip[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return nil, ErrBadHeader
	}
	if Checksum(ip[:ihl], 0) != 0 {
		return nil, ErrBadChecksum
	}
	ipTotal := int(be.Uint16(ip[2:]))
	if ipTotal < ihl || ipTotal > len(ip) {
		return nil, ErrTruncated
	}
	if ip[9] != IPProtoTCP {
		return nil, ErrNotTCP
	}
	// This stack never fragments (Marshal always sets DF); a frame with
	// MF set or a nonzero fragment offset is either broken middlebox
	// output or an evasion attempt (TCP header hidden in fragment 2).
	// Reject rather than misparse.
	if be.Uint16(ip[6:])&0x3fff != 0 {
		return nil, ErrFragment
	}
	p.ECN = ECN(ip[1] & 0x3)
	p.SrcIP = IPv4(be.Uint32(ip[12:]))
	p.DstIP = IPv4(be.Uint32(ip[16:]))

	tcp := ip[ihl:ipTotal]
	if len(tcp) < TCPHeaderLen {
		return nil, ErrTruncated
	}
	hlen := int(tcp[12]>>4) * 4
	if hlen < TCPHeaderLen || hlen > len(tcp) {
		return nil, ErrBadHeader
	}
	if Checksum(tcp, pseudoHeaderSum(p.SrcIP, p.DstIP, len(tcp))) != 0 {
		return nil, ErrBadChecksum
	}
	p.SrcPort = be.Uint16(tcp[0:])
	p.DstPort = be.Uint16(tcp[2:])
	p.Seq = be.Uint32(tcp[4:])
	p.Ack = be.Uint32(tcp[8:])
	p.Flags = TCPFlags(tcp[13])
	p.Window = be.Uint16(tcp[14:])

	// Options.
	opt := tcp[TCPHeaderLen:hlen]
	for len(opt) > 0 {
		switch opt[0] {
		case 0: // end of options
			opt = nil
		case 1: // NOP
			opt = opt[1:]
		default:
			if len(opt) < 2 || int(opt[1]) < 2 || int(opt[1]) > len(opt) {
				return nil, ErrBadHeader
			}
			olen := int(opt[1])
			switch opt[0] {
			case 2: // MSS
				if olen == 4 {
					p.MSSOpt = be.Uint16(opt[2:])
				}
			case 8: // timestamps
				if olen == 10 {
					p.HasTS = true
					p.TSVal = be.Uint32(opt[2:])
					p.TSEcr = be.Uint32(opt[6:])
				}
			}
			opt = opt[olen:]
		}
	}

	p.Payload = tcp[hlen:]
	p.PayloadLen = len(p.Payload)
	return p, nil
}
