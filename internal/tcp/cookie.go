package tcp

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"
)

// SYN cookies (RFC 4987 style, adapted to this stack's 32-bit ISN):
// when a listener is under SYN pressure the slow path answers SYNs
// statelessly, encoding everything it needs to reconstruct the
// connection into the ISN it advertises. The completing ACK proves the
// peer saw the SYN-ACK (so the source address is real) and the cookie
// is re-derived and checked before any state is allocated.
//
// ISN layout (most significant bit first):
//
//	bits 31..8  24-bit truncated keyed MAC over the 4-tuple, the
//	            peer's ISS, the key epoch, and the MSS class
//	bits  7..6  key epoch (mod 4), so validation knows which key
//	            generation signed the cookie across rotations
//	bits  5..3  MSS class index (see CookieMSSClasses)
//	bits  2..0  reserved, zero
//
// A 24-bit MAC means a blind attacker completing the handshake without
// seeing the SYN-ACK must guess among 2^24 values per (tuple, epoch) —
// the same budget classical SYN cookies accept.

// CookieMSSClasses are the MSS values a cookie can round down to. The
// completing ACK recovers the class and it caps the reconstructed
// flow's segmentation, since the peer's actual SYN option is long gone.
var CookieMSSClasses = [...]uint16{536, 1024, 1448, 8960}

const (
	cookieMACShift   = 8
	cookieEpochShift = 6
	cookieEpochMask  = 0x3
	cookieMSSShift   = 3
	cookieMSSMask    = 0x7
)

// DefaultCookieRotate is the key-rotation period. Cookies from the
// previous epoch stay valid, so a peer has at least one full period to
// complete its handshake.
const DefaultCookieRotate = 4 * time.Second

// CookieJar issues and validates SYN cookies under rotating keys. It is
// owned by the fast-path engine (shared state) so key epochs survive a
// slow-path warm restart: a cookie issued before the crash still
// validates on the ACK that completes after recovery.
type CookieJar struct {
	mu      sync.Mutex
	keys    [2][32]byte // [0] current epoch's key, [1] previous
	epoch   uint32
	rotated int64 // nanos of the last rotation
	period  int64 // rotation period, nanos

	issued    uint64 // diagnostic: cookies signed by this jar
	rotations uint64
}

// NewCookieJar creates a jar whose key stream is derived from seed by
// hash chaining. A deterministic seed keeps simulation runs
// reproducible; a production deployment would draw keys from
// crypto/rand instead.
func NewCookieJar(seed int64, rotate time.Duration) *CookieJar {
	if rotate <= 0 {
		rotate = DefaultCookieRotate
	}
	j := &CookieJar{period: int64(rotate)}
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], uint64(seed))
	j.keys[1] = sha256.Sum256(s[:])
	j.keys[0] = sha256.Sum256(j.keys[1][:])
	return j
}

// MaybeRotate advances the key epoch if the rotation period has
// elapsed since the last rotation. now is a monotonic-ish nanosecond
// clock. Returns true when a rotation happened.
func (j *CookieJar) MaybeRotate(now int64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rotated == 0 {
		j.rotated = now
		return false
	}
	if now-j.rotated < j.period {
		return false
	}
	j.keys[1] = j.keys[0]
	j.keys[0] = sha256.Sum256(j.keys[0][:])
	j.epoch++
	j.rotated = now
	j.rotations++
	return true
}

// Epoch returns the current key epoch (diagnostic, tests).
func (j *CookieJar) Epoch() uint32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// Rotations returns how many key rotations have happened.
func (j *CookieJar) Rotations() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rotations
}

// MSSClassIndex rounds mss down to the nearest cookie class and
// returns its index. SYNs without an MSS option land in class 0.
func MSSClassIndex(mss uint16) int {
	idx := 0
	for i, c := range CookieMSSClasses {
		if mss >= c {
			idx = i
		}
	}
	return idx
}

// Issue signs a cookie ISN for the given connection attempt.
func (j *CookieJar) Issue(localIP uint32, localPort uint16, remoteIP uint32, remotePort uint16, peerISS uint32, mss uint16) uint32 {
	mssIdx := MSSClassIndex(mss)
	j.mu.Lock()
	key, epoch := j.keys[0], j.epoch
	j.issued++
	j.mu.Unlock()
	mac := cookieMAC(key, localIP, localPort, remoteIP, remotePort, peerISS, epoch, uint8(mssIdx))
	return mac<<cookieMACShift |
		(epoch&cookieEpochMask)<<cookieEpochShift |
		uint32(mssIdx)<<cookieMSSShift
}

// Validate checks a cookie echoed back on a completing ACK against the
// current and previous key epochs. On success it returns the MSS the
// cookie encodes.
func (j *CookieJar) Validate(localIP uint32, localPort uint16, remoteIP uint32, remotePort uint16, peerISS uint32, cookie uint32) (mss uint16, ok bool) {
	if cookie&(1<<cookieMSSShift-1) != 0 {
		return 0, false // reserved bits must be zero
	}
	mssIdx := uint8(cookie >> cookieMSSShift & cookieMSSMask)
	if int(mssIdx) >= len(CookieMSSClasses) {
		return 0, false
	}
	epochBits := cookie >> cookieEpochShift & cookieEpochMask
	j.mu.Lock()
	keys, epoch := j.keys, j.epoch
	j.mu.Unlock()
	for gen := uint32(0); gen < 2; gen++ {
		e := epoch - gen
		if e&cookieEpochMask != epochBits {
			continue
		}
		mac := cookieMAC(keys[gen], localIP, localPort, remoteIP, remotePort, peerISS, e, mssIdx)
		if mac == cookie>>cookieMACShift {
			return CookieMSSClasses[mssIdx], true
		}
	}
	return 0, false
}

// cookieMAC computes the truncated 24-bit keyed MAC.
func cookieMAC(key [32]byte, localIP uint32, localPort uint16, remoteIP uint32, remotePort uint16, peerISS, epoch uint32, mssIdx uint8) uint32 {
	var msg [32 + 4 + 2 + 4 + 2 + 4 + 4 + 1]byte
	copy(msg[:32], key[:])
	binary.BigEndian.PutUint32(msg[32:36], localIP)
	binary.BigEndian.PutUint16(msg[36:38], localPort)
	binary.BigEndian.PutUint32(msg[38:42], remoteIP)
	binary.BigEndian.PutUint16(msg[42:44], remotePort)
	binary.BigEndian.PutUint32(msg[44:48], peerISS)
	binary.BigEndian.PutUint32(msg[48:52], epoch)
	msg[52] = mssIdx
	sum := sha256.Sum256(msg[:])
	return binary.BigEndian.Uint32(sum[:4]) >> 8 // top 24 bits
}
