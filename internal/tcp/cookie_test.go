package tcp

import (
	"testing"
	"time"
)

const (
	cLocal  = uint32(0x0a000001) // 10.0.0.1
	cRemote = uint32(0x0a000101) // 10.0.1.1
)

func TestCookieRoundTrip(t *testing.T) {
	j := NewCookieJar(1, time.Second)
	for _, mss := range []uint16{0, 400, 536, 1000, 1448, 1460, 8960, 65535} {
		iss := uint32(0xdeadbeef)
		c := j.Issue(cLocal, 7000, cRemote, 40000, iss, mss)
		got, ok := j.Validate(cLocal, 7000, cRemote, 40000, iss, c)
		if !ok {
			t.Fatalf("mss %d: cookie did not validate", mss)
		}
		want := CookieMSSClasses[MSSClassIndex(mss)]
		if got != want {
			t.Fatalf("mss %d: recovered %d, want class %d", mss, got, want)
		}
	}
}

func TestCookieRejectsTamper(t *testing.T) {
	j := NewCookieJar(1, time.Second)
	c := j.Issue(cLocal, 7000, cRemote, 40000, 99, 1448)
	cases := map[string]func() (mss uint16, ok bool){
		"wrong tuple port": func() (uint16, bool) { return j.Validate(cLocal, 7001, cRemote, 40000, 99, c) },
		"wrong remote":     func() (uint16, bool) { return j.Validate(cLocal, 7000, 0x0a090909, 40000, 99, c) },
		"wrong iss":        func() (uint16, bool) { return j.Validate(cLocal, 7000, cRemote, 40000, 100, c) },
		"flipped mac bit":  func() (uint16, bool) { return j.Validate(cLocal, 7000, cRemote, 40000, 99, c^(1<<20)) },
		"flipped mss bits": func() (uint16, bool) { return j.Validate(cLocal, 7000, cRemote, 40000, 99, c^(1<<3)) },
		"reserved bit set": func() (uint16, bool) { return j.Validate(cLocal, 7000, cRemote, 40000, 99, c|1) },
	}
	for name, fn := range cases {
		if _, ok := fn(); ok {
			t.Errorf("%s: tampered cookie validated", name)
		}
	}
}

func TestCookieSurvivesOneRotation(t *testing.T) {
	j := NewCookieJar(1, time.Second)
	now := int64(1e9)
	j.MaybeRotate(now) // arms the clock
	c := j.Issue(cLocal, 7000, cRemote, 40000, 5, 1448)

	if rot := j.MaybeRotate(now + int64(500*time.Millisecond)); rot {
		t.Fatal("rotated before the period elapsed")
	}
	if rot := j.MaybeRotate(now + int64(time.Second)); !rot {
		t.Fatal("did not rotate after the period")
	}
	if _, ok := j.Validate(cLocal, 7000, cRemote, 40000, 5, c); !ok {
		t.Fatal("cookie from the previous epoch must still validate")
	}
	if rot := j.MaybeRotate(now + int64(2*time.Second)); !rot {
		t.Fatal("second rotation missing")
	}
	if _, ok := j.Validate(cLocal, 7000, cRemote, 40000, 5, c); ok {
		t.Fatal("cookie two epochs old must be rejected")
	}
	if j.Epoch() != 2 || j.Rotations() != 2 {
		t.Fatalf("epoch/rotations = %d/%d, want 2/2", j.Epoch(), j.Rotations())
	}
}

func TestCookieDistinctJarsDisagree(t *testing.T) {
	a, b := NewCookieJar(1, time.Second), NewCookieJar(2, time.Second)
	c := a.Issue(cLocal, 7000, cRemote, 40000, 7, 1448)
	if _, ok := b.Validate(cLocal, 7000, cRemote, 40000, 7, c); ok {
		t.Fatal("jar with a different seed validated a foreign cookie")
	}
}

func TestAckLimiter(t *testing.T) {
	l := NewAckLimiter(3)
	now := int64(5e9)
	allowed := 0
	for i := 0; i < 10; i++ {
		if l.Allow(now) {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("allowed %d in one window, want 3", allowed)
	}
	if l.Suppressed.Load() != 7 {
		t.Fatalf("suppressed = %d, want 7", l.Suppressed.Load())
	}
	// Next window refreshes the allowance.
	if !l.Allow(now + int64(time.Second)) {
		t.Fatal("new window did not refresh the allowance")
	}
}
