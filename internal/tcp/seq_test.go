package tcp

import (
	"testing"
	"testing/quick"
)

func TestSeqComparisons(t *testing.T) {
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{0xffffffff, 0, true},  // wraparound: max is just before 0
		{0, 0xffffffff, false}, // and 0 is after max
		{0x7fffffff, 0x80000000, true},
	}
	for _, c := range cases {
		if got := SeqLT(c.a, c.b); got != c.lt {
			t.Errorf("SeqLT(%#x, %#x) = %v, want %v", c.a, c.b, got, c.lt)
		}
	}
}

func TestSeqRelationsConsistent(t *testing.T) {
	f := func(a, b uint32) bool {
		// Exactly one of LT, GT, or equality holds (for in-range distances).
		if a == b {
			return !SeqLT(a, b) && !SeqGT(a, b) && SeqLEQ(a, b) && SeqGEQ(a, b)
		}
		lt, gt := SeqLT(a, b), SeqGT(a, b)
		if int32(a-b) == -2147483648 { // exactly half the space: LT by convention, GT false
			return lt && !gt
		}
		return lt != gt &&
			SeqLEQ(a, b) == lt && SeqGEQ(a, b) == gt &&
			SeqLT(b, a) == gt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqMaxMin(t *testing.T) {
	if SeqMax(0xfffffff0, 5) != 5 {
		t.Error("SeqMax should respect wraparound (5 is after 0xfffffff0)")
	}
	if SeqMin(0xfffffff0, 5) != 0xfffffff0 {
		t.Error("SeqMin should respect wraparound")
	}
	if SeqMax(7, 7) != 7 || SeqMin(7, 7) != 7 {
		t.Error("equal values")
	}
}

func TestSeqDiff(t *testing.T) {
	if SeqDiff(10, 3) != 7 {
		t.Error("simple diff")
	}
	if SeqDiff(2, 0xffffffff) != 3 {
		t.Error("wrapped diff")
	}
	if SeqDiff(0xffffffff, 2) != -3 {
		t.Error("negative wrapped diff")
	}
}

func TestSeqInWindow(t *testing.T) {
	if !SeqInWindow(5, 0, 10) {
		t.Error("5 in [0,10)")
	}
	if SeqInWindow(10, 0, 10) {
		t.Error("10 not in [0,10)")
	}
	if !SeqInWindow(1, 0xfffffffe, 10) {
		t.Error("wrapped window should include 1")
	}
	if SeqInWindow(0xfffffffd, 0xfffffffe, 10) {
		t.Error("just before window start")
	}
}

func TestSegments(t *testing.T) {
	cases := []struct{ n, mss, want int }{
		{0, 1448, 0}, {-5, 1448, 0}, {1, 1448, 1}, {1448, 1448, 1},
		{1449, 1448, 2}, {4344, 1448, 3}, {4345, 1448, 4},
	}
	for _, c := range cases {
		if got := Segments(c.n, c.mss); got != c.want {
			t.Errorf("Segments(%d, %d) = %d, want %d", c.n, c.mss, got, c.want)
		}
	}
}

func TestSegmentSizes(t *testing.T) {
	var offs, lens []int
	SegmentSizes(3000, 1448, func(off, l int) bool {
		offs = append(offs, off)
		lens = append(lens, l)
		return true
	})
	if len(offs) != 3 || offs[0] != 0 || offs[1] != 1448 || offs[2] != 2896 {
		t.Fatalf("offs = %v", offs)
	}
	if lens[0] != 1448 || lens[1] != 1448 || lens[2] != 104 {
		t.Fatalf("lens = %v", lens)
	}
}

func TestSegmentSizesEarlyStop(t *testing.T) {
	count := 0
	SegmentSizes(10000, 1000, func(off, l int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestSegmentSizesCoversAllBytes(t *testing.T) {
	f := func(n uint16, mssRaw uint8) bool {
		mss := int(mssRaw)%1448 + 1
		total := 0
		last := -1
		SegmentSizes(int(n), mss, func(off, l int) bool {
			if off != last+1 && off != 0 && total != off {
				return false
			}
			if l <= 0 || l > mss {
				return false
			}
			total += l
			return true
		})
		return total == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRTTEstimator(t *testing.T) {
	r := NewRTTEstimator()
	if r.Initialized() {
		t.Fatal("fresh estimator should not be initialized")
	}
	if r.RTO() != r.MaxRTO {
		t.Fatal("RTO before samples should be MaxRTO")
	}
	r.Sample(100000) // 100us
	if r.SRTT() != 100000 || r.RTTVar() != 50000 {
		t.Fatalf("first sample: srtt=%d rttvar=%d", r.SRTT(), r.RTTVar())
	}
	for i := 0; i < 100; i++ {
		r.Sample(100000)
	}
	if r.SRTT() != 100000 {
		t.Fatalf("constant samples should converge srtt, got %d", r.SRTT())
	}
	if r.RTTVar() >= 50000 {
		t.Fatalf("rttvar should shrink with constant samples, got %d", r.RTTVar())
	}
	if rto := r.RTO(); rto < r.MinRTO || rto > r.MaxRTO {
		t.Fatalf("RTO %d outside bounds", rto)
	}
}

func TestRTTEstimatorIgnoresNegative(t *testing.T) {
	r := NewRTTEstimator()
	r.Sample(-5)
	if r.Initialized() {
		t.Fatal("negative sample should be ignored")
	}
}

func TestRTOClamping(t *testing.T) {
	r := NewRTTEstimator()
	r.Sample(1) // tiny RTT -> raw RTO below MinRTO
	if r.RTO() != r.MinRTO {
		t.Fatalf("RTO = %d, want MinRTO", r.RTO())
	}
	r2 := NewRTTEstimator()
	r2.Sample(10e9) // huge RTT -> clamped to MaxRTO
	if r2.RTO() != r2.MaxRTO {
		t.Fatalf("RTO = %d, want MaxRTO", r2.RTO())
	}
}
