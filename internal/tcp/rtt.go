package tcp

// RTTEstimator implements the standard SRTT/RTTVAR smoothing (RFC 6298)
// over timestamp-derived samples, as the TAS fast path computes from TCP
// timestamp echoes and exports to the slow path via the rtt_est field.
// Times are in nanoseconds.
type RTTEstimator struct {
	srtt   int64
	rttvar int64
	init   bool

	// Bounds for the retransmission timeout.
	MinRTO int64
	MaxRTO int64
}

// NewRTTEstimator returns an estimator with datacenter-appropriate RTO
// bounds (1 ms .. 1 s).
func NewRTTEstimator() *RTTEstimator {
	return &RTTEstimator{MinRTO: 1e6, MaxRTO: 1e9}
}

// Sample folds in one RTT measurement (ns).
func (r *RTTEstimator) Sample(rtt int64) {
	if rtt < 0 {
		return
	}
	if !r.init {
		r.srtt = rtt
		r.rttvar = rtt / 2
		r.init = true
		return
	}
	d := r.srtt - rtt
	if d < 0 {
		d = -d
	}
	r.rttvar = (3*r.rttvar + d) / 4
	r.srtt = (7*r.srtt + rtt) / 8
}

// SRTT returns the smoothed RTT (0 before any sample).
func (r *RTTEstimator) SRTT() int64 { return r.srtt }

// RTTVar returns the smoothed RTT variance.
func (r *RTTEstimator) RTTVar() int64 { return r.rttvar }

// Initialized reports whether at least one sample has been folded in.
func (r *RTTEstimator) Initialized() bool { return r.init }

// RTO returns the current retransmission timeout, clamped to
// [MinRTO, MaxRTO]. Before any sample it returns MaxRTO.
func (r *RTTEstimator) RTO() int64 {
	if !r.init {
		return r.MaxRTO
	}
	rto := r.srtt + 4*r.rttvar
	if rto < r.MinRTO {
		rto = r.MinRTO
	}
	if rto > r.MaxRTO {
		rto = r.MaxRTO
	}
	return rto
}
