package tcp

import "sync/atomic"

// AckLimiter is the global challenge-ACK rate limit from RFC 5961 §10:
// challenge ACKs defend against blind RST/SYN/data injection, but an
// unmetered responder would let an attacker turn the defense into an
// amplification primitive. The limiter is a fixed one-second window
// with an allowance; it is shared by the slow path (RST/SYN
// challenges) and the fast path (blind-ACK challenges) so the bound is
// truly global per stack instance.
//
// The window roll uses a CAS so concurrent fast-path cores agree on
// window boundaries without a lock; the count is a plain atomic add,
// so the bound is approximate by at most the number of racing cores —
// fine for a DoS valve.
type AckLimiter struct {
	perSec   int64
	winStart atomic.Int64 // nanos at which the current window opened
	count    atomic.Int64

	SentCount  atomic.Uint64 // challenge ACKs allowed
	Suppressed atomic.Uint64 // challenge ACKs suppressed by the limit
}

// NewAckLimiter allows perSec challenge ACKs per second. perSec <= 0
// selects the default of 100 (Linux's historical net.ipv4.tcp_challenge_ack_limit
// order of magnitude).
func NewAckLimiter(perSec int) *AckLimiter {
	if perSec <= 0 {
		perSec = 100
	}
	return &AckLimiter{perSec: int64(perSec)}
}

// Allow reports whether a challenge ACK may be sent now (nanos), and
// accounts for it either way.
func (l *AckLimiter) Allow(now int64) bool {
	const window = int64(1e9)
	start := l.winStart.Load()
	if now-start >= window {
		if l.winStart.CompareAndSwap(start, now) {
			l.count.Store(0)
		}
	}
	if l.count.Add(1) > l.perSec {
		l.Suppressed.Add(1)
		return false
	}
	l.SentCount.Add(1)
	return true
}
