// Package tcp provides protocol mechanics shared by the TAS fast path,
// slow path, and the baseline transport simulations: modular sequence-
// number arithmetic, RTT estimation (RFC 6298 plus the paper's
// timestamp-based estimator), and MSS segmentation helpers.
package tcp

// Sequence-number arithmetic is modular in 2^32. A sequence a is "before"
// b if the signed distance from a to b is positive, which is well defined
// as long as the compared values are within 2^31 of each other — always
// true for in-window comparisons.

// SeqLT reports whether sequence a is strictly before b.
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports whether sequence a is at or before b.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqGT reports whether sequence a is strictly after b.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGEQ reports whether sequence a is at or after b.
func SeqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// SeqDiff returns the signed distance from b to a (a - b), valid when the
// two are within 2^31 of each other.
func SeqDiff(a, b uint32) int32 { return int32(a - b) }

// SeqMax returns the later of two sequence numbers.
func SeqMax(a, b uint32) uint32 {
	if SeqGT(a, b) {
		return a
	}
	return b
}

// SeqMin returns the earlier of two sequence numbers.
func SeqMin(a, b uint32) uint32 {
	if SeqLT(a, b) {
		return a
	}
	return b
}

// SeqInWindow reports whether seq falls within [start, start+size).
func SeqInWindow(seq, start uint32, size uint32) bool {
	return SeqGEQ(seq, start) && SeqLT(seq, start+size)
}

// Segments returns the number of MSS-sized segments needed to carry n
// bytes (ceiling division); 0 for n <= 0.
func Segments(n int, mss int) int {
	if n <= 0 {
		return 0
	}
	return (n + mss - 1) / mss
}

// SegmentSizes invokes fn once per segment for n bytes of payload split
// at mss boundaries, passing the byte offset and length of each segment.
// It stops early if fn returns false.
func SegmentSizes(n, mss int, fn func(off, length int) bool) {
	for off := 0; off < n; off += mss {
		l := n - off
		if l > mss {
			l = mss
		}
		if !fn(off, l) {
			return
		}
	}
}
