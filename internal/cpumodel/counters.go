package cpumodel

// Breakdown is a top-down cycle decomposition (Yasin's method, as the
// paper's Table 2): cycles retiring instructions, blocked on instruction
// fetch (frontend bound), blocked on data (backend bound), and wasted on
// bad speculation.
type Breakdown struct {
	Retiring float64
	Frontend float64
	Backend  float64
	BadSpec  float64
}

// Total returns the sum of the four categories.
func (b Breakdown) Total() float64 { return b.Retiring + b.Frontend + b.Backend + b.BadSpec }

// Scale returns the breakdown multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{b.Retiring * f, b.Frontend * f, b.Backend * f, b.BadSpec * f}
}

// Add returns the element-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{b.Retiring + o.Retiring, b.Frontend + o.Frontend, b.Backend + o.Backend, b.BadSpec + o.BadSpec}
}

// topDownShape gives each stack's characteristic distribution of cycles
// across top-down categories, for the application side and the stack
// side, normalized from the paper's Table 2 measurements. A monolithic
// stack is dominated by backend stalls (scattered state) with a heavy
// frontend component (huge instruction footprint); streamlined stacks
// retire a far larger fraction.
func topDownShape(k StackKind) (app, stack Breakdown) {
	switch k {
	case StackLinux:
		// Table 2 Linux: app 175/173/388/141, stack 3591/2600/9046/515.
		return Breakdown{175, 173, 388, 141}, Breakdown{3591, 2600, 9046, 515}
	case StackIX:
		// Table 2 IX: app 190/121/402/48, stack 753/175/1005/52.
		return Breakdown{190, 121, 402, 48}, Breakdown{753, 175, 1005, 52}
	case StackMTCP:
		// Not measured in the paper; between IX and Linux, skewed to
		// backend (batched queue traversal).
		return Breakdown{190, 140, 420, 60}, Breakdown{1400, 600, 2600, 160}
	case StackTAS, StackTASLL:
		// Table 2 TAS: app 167/102/353/63, stack 848/248/684/129.
		return Breakdown{167, 102, 353, 63}, Breakdown{848, 248, 684, 129}
	}
	panic("cpumodel: unknown stack")
}

// PerRequestBreakdown scales the stack's characteristic top-down shape
// to the actual measured per-request cycles (appCycles in the
// application, stackCycles in the stack), yielding a Table 2 row.
func PerRequestBreakdown(k StackKind, appCycles, stackCycles float64) (app, stack Breakdown) {
	aShape, sShape := topDownShape(k)
	if t := aShape.Total(); t > 0 {
		app = aShape.Scale(appCycles / t)
	}
	if t := sShape.Total(); t > 0 {
		stack = sShape.Scale(stackCycles / t)
	}
	return app, stack
}

// CPI returns cycles per instruction.
func CPI(totalCycles, instructions float64) float64 {
	if instructions == 0 {
		return 0
	}
	return totalCycles / instructions
}

// IdealCPI is the best case for the paper's 4-way issue server.
const IdealCPI = 0.25
