// Package cpumodel models CPU execution for the benchmark simulations:
// cores that serially execute work measured in cycles, per-stack
// per-module cycle cost tables (calibrated from the paper's Table 1
// breakdown, measured with hardware performance counters on a 2.1 GHz
// Skylake), a cache-footprint model that makes per-connection state
// pressure emerge at high connection counts (the mechanism behind the
// paper's Figure 4), a lock-contention model for shared-state stacks,
// and top-down counter accounting (retiring / frontend / backend / bad
// speculation, Table 2).
package cpumodel

import (
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// DefaultCyclesPerNs is the paper's server clock (2.1 GHz Skylake).
const DefaultCyclesPerNs = 2.1

// Core is a serially-executing CPU resource in the discrete-event
// simulation. Work is queued implicitly: each Exec occupies the core
// from max(now, busyUntil) for cycles/frequency.
type Core struct {
	eng         *sim.Engine
	cyclesPerNs float64
	busyUntil   sim.Time

	// Accounting for utilization sampling (workload proportionality).
	busyAccum   sim.Time
	sampleStart sim.Time
	sampleBusy  sim.Time

	// Blocked models the fast path's adaptive sleep: a blocked core
	// charges a wakeup penalty on its next work item.
	Blocked      bool
	WakeupCycles float64

	TotalCycles float64
	TotalItems  uint64

	// Per-module attribution (Table 1 style): cycles and work items
	// charged through ExecMod, indexed by telemetry.Module. Plain Exec
	// leaves these untouched.
	ModCycles [telemetry.NumModules]float64
	ModItems  [telemetry.NumModules]uint64
}

// NewCore returns a core at the given clock rate (cycles per ns; use
// DefaultCyclesPerNs for the paper's server).
func NewCore(eng *sim.Engine, cyclesPerNs float64) *Core {
	if cyclesPerNs <= 0 {
		cyclesPerNs = DefaultCyclesPerNs
	}
	return &Core{eng: eng, cyclesPerNs: cyclesPerNs, WakeupCycles: 3000}
}

// Exec schedules cycles of work and calls done (if non-nil) when the
// work completes. It returns the completion time.
func (c *Core) Exec(cycles float64, done func()) sim.Time {
	if cycles < 0 {
		cycles = 0
	}
	if c.Blocked {
		cycles += c.WakeupCycles
		c.Blocked = false
	}
	now := c.eng.Now()
	start := c.busyUntil
	if start < now {
		start = now
	}
	dur := sim.Time(cycles / c.cyclesPerNs)
	end := start + dur
	c.busyUntil = end
	c.busyAccum += dur
	c.sampleBusy += dur
	c.TotalCycles += cycles
	c.TotalItems++
	if done != nil {
		c.eng.At(end, done)
	}
	return end
}

// ExecMod is Exec with the cycles attributed to a named stack module,
// so simulations produce the same Table-1-style per-module breakdown
// the live stack's cycle accounting does. Any surcharge Exec adds on
// top of the requested cycles (the wakeup penalty of a blocked core)
// lands under ModOther rather than inflating the named module.
func (c *Core) ExecMod(mod telemetry.Module, cycles float64, done func()) sim.Time {
	if cycles < 0 {
		cycles = 0
	}
	before := c.TotalCycles
	end := c.Exec(cycles, done)
	if mod < 0 || mod >= telemetry.NumModules {
		mod = telemetry.ModOther
	}
	c.ModCycles[mod] += cycles
	c.ModItems[mod]++
	if extra := c.TotalCycles - before - cycles; extra > 0 {
		c.ModCycles[telemetry.ModOther] += extra
	}
	return end
}

// ModuleBreakdown sums per-module attributed cycles and items across
// cores.
func ModuleBreakdown(cores []*Core) (cycles [telemetry.NumModules]float64, items [telemetry.NumModules]uint64) {
	for _, c := range cores {
		for m := 0; m < int(telemetry.NumModules); m++ {
			cycles[m] += c.ModCycles[m]
			items[m] += c.ModItems[m]
		}
	}
	return cycles, items
}

// QueueDelay returns how long newly submitted work would wait before
// starting.
func (c *Core) QueueDelay() sim.Time {
	if d := c.busyUntil - c.eng.Now(); d > 0 {
		return d
	}
	return 0
}

// Utilization returns the busy fraction since the previous call (or
// since creation) and resets the sampling window.
func (c *Core) Utilization() float64 {
	now := c.eng.Now()
	window := now - c.sampleStart
	if window <= 0 {
		return 0
	}
	busy := c.sampleBusy
	// Work scheduled beyond now counts only up to now.
	if over := c.busyUntil - now; over > 0 && busy > over {
		busy -= over
	}
	u := float64(busy) / float64(window)
	c.sampleStart = now
	c.sampleBusy = 0
	if u > 1 {
		u = 1
	}
	return u
}

// BusyTime returns the total accumulated busy time.
func (c *Core) BusyTime() sim.Time { return c.busyAccum }

// ResetSample restarts the utilization sampling window at the current
// time — required when a core is (re)activated so the next Utilization
// reading does not average over its idle past.
func (c *Core) ResetSample() {
	c.sampleStart = c.eng.Now()
	c.sampleBusy = 0
}

// Pool is a set of cores with load-spreading helpers.
type Pool struct {
	Cores []*Core
}

// NewPool returns n cores.
func NewPool(eng *sim.Engine, n int, cyclesPerNs float64) *Pool {
	p := &Pool{}
	for i := 0; i < n; i++ {
		p.Cores = append(p.Cores, NewCore(eng, cyclesPerNs))
	}
	return p
}

// ByHash returns the core a flow hash steers to, over the first n cores
// (n <= 0 means all).
func (p *Pool) ByHash(hash uint32, n int) *Core {
	if n <= 0 || n > len(p.Cores) {
		n = len(p.Cores)
	}
	return p.Cores[hash%uint32(n)]
}

// LeastLoaded returns the core with the shortest queue among the first n.
func (p *Pool) LeastLoaded(n int) *Core {
	if n <= 0 || n > len(p.Cores) {
		n = len(p.Cores)
	}
	best := p.Cores[0]
	for _, c := range p.Cores[1:n] {
		if c.QueueDelay() < best.QueueDelay() {
			best = c
		}
	}
	return best
}

// Utilization returns the average utilization over the first n cores,
// resetting their sampling windows.
func (p *Pool) Utilization(n int) float64 {
	if n <= 0 || n > len(p.Cores) {
		n = len(p.Cores)
	}
	var sum float64
	for _, c := range p.Cores[:n] {
		sum += c.Utilization()
	}
	return sum / float64(n)
}
