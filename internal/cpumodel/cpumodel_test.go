package cpumodel

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestCoreSerializesWork(t *testing.T) {
	eng := sim.New(1)
	c := NewCore(eng, 2.0) // 2 cycles/ns
	var done []sim.Time
	c.Exec(2000, func() { done = append(done, eng.Now()) }) // 1000ns
	c.Exec(2000, func() { done = append(done, eng.Now()) }) // queued behind
	eng.Run()
	if len(done) != 2 || done[0] != 1000 || done[1] != 2000 {
		t.Fatalf("completions = %v", done)
	}
	if c.TotalCycles != 4000 || c.TotalItems != 2 {
		t.Fatalf("accounting: %v cycles, %d items", c.TotalCycles, c.TotalItems)
	}
}

func TestCoreIdleGap(t *testing.T) {
	eng := sim.New(1)
	c := NewCore(eng, 1.0)
	c.Exec(100, nil)
	eng.At(500, func() {
		c.Exec(100, func() {
			if eng.Now() != 600 {
				t.Errorf("work after idle should start immediately: done at %d", eng.Now())
			}
		})
	})
	eng.Run()
}

func TestCoreQueueDelay(t *testing.T) {
	eng := sim.New(1)
	c := NewCore(eng, 1.0)
	if c.QueueDelay() != 0 {
		t.Fatal("idle core has zero delay")
	}
	c.Exec(1000, nil)
	if c.QueueDelay() != 1000 {
		t.Fatalf("delay = %d", c.QueueDelay())
	}
}

func TestCoreUtilization(t *testing.T) {
	eng := sim.New(1)
	c := NewCore(eng, 1.0)
	c.Exec(500, nil)
	eng.RunUntil(1000)
	u := c.Utilization()
	if math.Abs(u-0.5) > 0.01 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	// Window reset: idle from here.
	eng.RunUntil(2000)
	if u := c.Utilization(); u != 0 {
		t.Fatalf("second window utilization = %v, want 0", u)
	}
}

func TestCoreBlockedWakeupPenalty(t *testing.T) {
	eng := sim.New(1)
	c := NewCore(eng, 1.0)
	c.Blocked = true
	c.WakeupCycles = 100
	end := c.Exec(50, nil)
	if end != 150 {
		t.Fatalf("blocked core should add wakeup cycles: end=%d", end)
	}
	if c.Blocked {
		t.Fatal("core should unblock on work")
	}
	if end := c.Exec(50, nil); end != 200 {
		t.Fatalf("second exec should not pay wakeup: end=%d", end)
	}
}

func TestPoolHelpers(t *testing.T) {
	eng := sim.New(1)
	p := NewPool(eng, 4, 1.0)
	if len(p.Cores) != 4 {
		t.Fatal("pool size")
	}
	if p.ByHash(5, 2) != p.Cores[1] {
		t.Fatal("ByHash restriction wrong")
	}
	p.Cores[0].Exec(1000, nil)
	if p.LeastLoaded(2) != p.Cores[1] {
		t.Fatal("LeastLoaded should pick idle core")
	}
	p.Cores[0].Exec(0, nil)
	if got := p.Utilization(4); got < 0 || got > 1 {
		t.Fatalf("utilization %v", got)
	}
}

func TestCostsMatchTable1(t *testing.T) {
	// Totals from Table 1: Linux 16.75kc, IX 2.73kc, TAS 2.57kc.
	if got := CostsFor(StackLinux).TotalCycles(); got != 16750 {
		t.Fatalf("Linux total = %v", got)
	}
	if got := CostsFor(StackIX).TotalCycles(); got != 2740 {
		t.Fatalf("IX total = %v", got)
	}
	if got := CostsFor(StackTAS).TotalCycles(); got != 2570 {
		t.Fatalf("TAS total = %v", got)
	}
	// TAS LL cheaper than TAS SO; mTCP between IX and Linux.
	if CostsFor(StackTASLL).TotalCycles() >= CostsFor(StackTAS).TotalCycles() {
		t.Fatal("TAS LL should be cheaper than TAS SO")
	}
	m := CostsFor(StackMTCP).TotalCycles()
	if m <= CostsFor(StackIX).TotalCycles() || m >= CostsFor(StackLinux).TotalCycles() {
		t.Fatalf("mTCP total %v should sit between IX and Linux", m)
	}
}

func TestCPIOrdering(t *testing.T) {
	// Paper: Linux CPI 1.32, IX 0.82, TAS 0.66.
	lin := CostsFor(StackLinux)
	ix := CostsFor(StackIX)
	tas := CostsFor(StackTAS)
	cpiL := CPI(lin.TotalCycles(), lin.Instructions)
	cpiI := CPI(ix.TotalCycles(), ix.Instructions)
	cpiT := CPI(tas.TotalCycles(), tas.Instructions)
	if !(cpiT < cpiI && cpiI < cpiL) {
		t.Fatalf("CPI ordering: TAS %.2f IX %.2f Linux %.2f", cpiT, cpiI, cpiL)
	}
	if math.Abs(cpiL-1.32) > 0.02 || math.Abs(cpiI-0.83) > 0.02 || math.Abs(cpiT-0.66) > 0.02 {
		t.Fatalf("CPI values off: %v %v %v", cpiL, cpiI, cpiT)
	}
}

func TestCacheModelCliff(t *testing.T) {
	m := DefaultCache(20)
	tas := CostsFor(StackTAS)
	ix := CostsFor(StackIX)
	// At the calibration point there is no extra cost.
	if e := m.ExtraCycles(tas, 32768); e != 0 {
		t.Fatalf("TAS extra at calibration = %v", e)
	}
	// At 96K conns, IX pays much more than TAS (Fig 4's divergence).
	tasHi := m.ExtraCycles(tas, 96<<10)
	ixHi := m.ExtraCycles(ix, 96<<10)
	if tasHi < 0 || ixHi <= tasHi*3 {
		t.Fatalf("cache penalties: TAS %v, IX %v — IX should be far worse", tasHi, ixHi)
	}
	// Relative degradation: IX at 96K should lose a large fraction of
	// its base budget; TAS only a small one.
	if frac := tasHi / tas.TotalCycles(); frac > 0.15 {
		t.Fatalf("TAS degradation %v too high", frac)
	}
	if frac := ixHi / ix.TotalCycles(); frac < 0.3 {
		t.Fatalf("IX degradation %v too low", frac)
	}
}

func TestCacheModelMonotone(t *testing.T) {
	m := DefaultCache(20)
	c := CostsFor(StackLinux)
	prev := math.Inf(-1)
	for conns := 1024; conns <= 128<<10; conns *= 2 {
		e := m.ExtraCycles(c, conns)
		if e < prev {
			t.Fatalf("penalty must be nondecreasing in conns: %v after %v", e, prev)
		}
		prev = e
	}
}

func TestLockExtraCycles(t *testing.T) {
	lin := CostsFor(StackLinux)
	if LockExtraCycles(lin, 8) != 0 {
		t.Fatal("penalty at the calibration point must be zero")
	}
	if LockExtraCycles(lin, 16) != 400*8 {
		t.Fatalf("lock penalty = %v", LockExtraCycles(lin, 16))
	}
	if LockExtraCycles(lin, 1) >= 0 {
		t.Fatal("fewer cores than calibration should credit")
	}
	ix := CostsFor(StackIX)
	if LockExtraCycles(ix, 8) != 0 || LockExtraCycles(ix, 16) != 0 {
		t.Fatal("IX is per-core isolated: no lock penalty")
	}
}

func TestPerRequestBreakdown(t *testing.T) {
	app, stack := PerRequestBreakdown(StackTAS, 680, 1890)
	if math.Abs(app.Total()-680) > 1e-6 {
		t.Fatalf("app breakdown total %v", app.Total())
	}
	if math.Abs(stack.Total()-1890) > 1e-6 {
		t.Fatalf("stack breakdown total %v", stack.Total())
	}
	// TAS retires the plurality of its stack cycles (streamlined code).
	if stack.Retiring < stack.Frontend || stack.Retiring < stack.BadSpec {
		t.Fatal("TAS stack should be retiring-dominated vs frontend/badspec")
	}
	// Linux is backend-bound.
	_, linStack := PerRequestBreakdown(StackLinux, 1070, 15680)
	if linStack.Backend <= linStack.Retiring {
		t.Fatal("Linux stack should be backend-bound")
	}
}

func TestBreakdownOps(t *testing.T) {
	b := Breakdown{1, 2, 3, 4}
	if b.Total() != 10 {
		t.Fatal("total")
	}
	if s := b.Scale(2); s.Backend != 6 {
		t.Fatal("scale")
	}
	if a := b.Add(Breakdown{1, 1, 1, 1}); a.Retiring != 2 || a.BadSpec != 5 {
		t.Fatal("add")
	}
}

func TestStackKindString(t *testing.T) {
	for k, want := range map[StackKind]string{
		StackLinux: "Linux", StackIX: "IX", StackMTCP: "mTCP", StackTAS: "TAS", StackTASLL: "TAS LL",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
