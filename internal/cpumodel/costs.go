package cpumodel

import "repro/internal/sim"

// StackKind identifies a network stack architecture under comparison.
type StackKind int

// The compared stacks.
const (
	StackLinux StackKind = iota // monolithic in-kernel (epoll)
	StackIX                     // protected kernel bypass, run-to-completion
	StackMTCP                   // per-core user-level stacks, heavy batching
	StackTAS                    // TAS with POSIX sockets ("TAS SO")
	StackTASLL                  // TAS low-level API ("TAS LL")
)

// String names the stack.
func (k StackKind) String() string {
	switch k {
	case StackLinux:
		return "Linux"
	case StackIX:
		return "IX"
	case StackMTCP:
		return "mTCP"
	case StackTAS:
		return "TAS"
	case StackTASLL:
		return "TAS LL"
	}
	return "?"
}

// Costs is the per-request cycle budget of a stack, by module, plus the
// architectural parameters that generate emergent penalties. Base module
// costs are the paper's Table 1 measurements (cycles per request at 32K
// connections on 8 cores, i.e. including that configuration's cache
// pressure); BaseConns records that calibration point so the cache model
// adds only *additional* pressure beyond it.
type Costs struct {
	Driver, IP, TCP, Sockets, Other, App float64

	Instructions float64 // instructions per request (Table 2)

	// Cache model inputs.
	ConnStateBytes int // per-connection state footprint kept hot
	LinesPerReq    int // distinct state cache lines touched per request
	BaseConns      int // connection count at which base costs were measured

	// Shared-state contention (monolithic stacks): extra cycles per
	// request per core sharing the stack beyond BaseCores (the core
	// count of the Table 1 calibration measurement, whose contention is
	// already inside the base numbers).
	LockCyclesPerCore float64
	BaseCores         int

	// Batching (mTCP): requests are released to the application and to
	// the wire at batch boundaries.
	BatchDelay sim.Time

	// Pipeline split: fraction of stack cycles on the RX leg for stacks
	// that run TCP on dedicated cores (TAS, mTCP); the rest is TX.
	RxFraction float64

	// Notification latency model: the delay between a packet arriving
	// at the NIC and the stack beginning to process it. For Linux this
	// is interrupt delivery, softirq scheduling, and epoll wakeup (tens
	// of microseconds at low load); for IX, adaptive batched polling;
	// for TAS, dedicated spinning cores (near zero). PollBase is the
	// floor, PollJitter the mean of an additional exponential component,
	// and SpikeProb/SpikeDelay model rare scheduler outliers (the long
	// maximum tails of Table 5).
	PollBase   sim.Time
	PollJitter sim.Time
	SpikeProb  float64
	SpikeDelay sim.Time
}

// StackCycles returns the non-application cycles per request.
func (c Costs) StackCycles() float64 {
	return c.Driver + c.IP + c.TCP + c.Sockets + c.Other
}

// TotalCycles returns all cycles per request including the application.
func (c Costs) TotalCycles() float64 { return c.StackCycles() + c.App }

// CostsFor returns the calibrated cost table for a stack. Values are the
// paper's Table 1 columns; mTCP (absent from Table 1) is interpolated
// from its Figure 6/10 behaviour: roughly 1.8x IX's stack cycles plus
// millisecond-scale batching.
func CostsFor(k StackKind) Costs {
	switch k {
	case StackLinux:
		return Costs{
			Driver: 730, IP: 1530, TCP: 3920, Sockets: 8000, Other: 1500, App: 1070,
			Instructions:   12700,
			ConnStateBytes: 2048, LinesPerReq: 40, BaseConns: 32768,
			LockCyclesPerCore: 400, BaseCores: 8,
			PollBase:   55 * sim.Microsecond,
			PollJitter: 18 * sim.Microsecond,
			SpikeProb:  0.002,
			SpikeDelay: 900 * sim.Microsecond,
		}
	case StackIX:
		return Costs{
			Driver: 50, IP: 120, TCP: 1050, Sockets: 760, App: 760,
			Instructions:   3300,
			ConnStateBytes: 1024, LinesPerReq: 20, BaseConns: 32768,
			PollBase:   6 * sim.Microsecond,
			PollJitter: 2 * sim.Microsecond,
			SpikeProb:  0.0005,
			SpikeDelay: 220 * sim.Microsecond,
		}
	case StackMTCP:
		return Costs{
			Driver: 100, IP: 200, TCP: 1900, Sockets: 1300, App: 760,
			Instructions:   5600,
			ConnStateBytes: 1024, LinesPerReq: 12, BaseConns: 32768,
			BatchDelay: 2 * sim.Millisecond,
			RxFraction: 0.55,
			PollBase:   2 * sim.Microsecond,
			PollJitter: sim.Microsecond,
		}
	case StackTAS:
		// Table 1's TAS modules sum to 2.20kc while the stated total is
		// 2.57kc; the residual 0.37kc (message-queue signalling etc.)
		// goes under Other so totals and CPI match the paper.
		return Costs{
			Driver: 90, IP: 0, TCP: 810, Sockets: 620, Other: 370, App: 680,
			Instructions:   3900,
			ConnStateBytes: 256, LinesPerReq: 3, BaseConns: 32768,
			RxFraction: 0.55,
			PollBase:   300, // dedicated spinning cores: ~0.3us
			PollJitter: 400,
			SpikeProb:  0.0005,
			SpikeDelay: 90 * sim.Microsecond,
		}
	case StackTASLL:
		// The low-level API skips the sockets emulation; the paper
		// reports app frontend overhead dropping to ~168 cycles with a
		// low-level interface and IX-like app costs.
		return Costs{
			Driver: 90, IP: 0, TCP: 810, Sockets: 170, Other: 370, App: 680,
			Instructions:   3400,
			ConnStateBytes: 256, LinesPerReq: 3, BaseConns: 32768,
			RxFraction: 0.55,
			PollBase:   300,
			PollJitter: 400,
			SpikeProb:  0.0005,
			SpikeDelay: 90 * sim.Microsecond,
		}
	}
	panic("cpumodel: unknown stack")
}

// CacheModel turns connection-state footprint into extra per-request
// cycles once the working set outgrows the cache, reproducing the
// connection-scalability cliff (Figure 4).
type CacheModel struct {
	// CacheBytes is the L2+L3 capacity available to the stack's cores
	// (the paper: ~2 MB per core, 33 MB aggregate on the server).
	CacheBytes int
	// MissPenaltyCycles is the DRAM access penalty per missed line.
	MissPenaltyCycles float64
}

// DefaultCache returns the paper server's cache model for n cores.
func DefaultCache(cores int) CacheModel {
	b := cores * 2 << 20
	if b > 33<<20 {
		b = 33 << 20
	}
	return CacheModel{CacheBytes: b, MissPenaltyCycles: 220}
}

// missProb returns the probability a state line misses with the given
// working set.
func (m CacheModel) missProb(workingSet int) float64 {
	if workingSet <= m.CacheBytes || workingSet == 0 {
		return 0
	}
	return 1 - float64(m.CacheBytes)/float64(workingSet)
}

// ExtraCycles returns the additional per-request cycles at the given
// connection count, relative to the cost table's calibration point.
func (m CacheModel) ExtraCycles(c Costs, conns int) float64 {
	cur := m.missProb(conns * c.ConnStateBytes)
	base := m.missProb(c.BaseConns * c.ConnStateBytes)
	d := cur - base
	if d < 0 {
		// Fewer connections than the calibration point: small credit.
		return d * float64(c.LinesPerReq) * m.MissPenaltyCycles
	}
	return d * float64(c.LinesPerReq) * m.MissPenaltyCycles
}

// LockExtraCycles returns the shared-state contention penalty (or
// credit) relative to the calibration core count.
func LockExtraCycles(c Costs, cores int) float64 {
	if c.LockCyclesPerCore == 0 {
		return 0
	}
	base := c.BaseCores
	if base < 1 {
		base = 1
	}
	return c.LockCyclesPerCore * float64(cores-base)
}
