package scenario

import "time"

// Builder assembles a Spec fluently; the JSON format and the builder
// produce identical specs. Timeline entries must be added in time
// order (Build validates). Example:
//
//	spec, err := scenario.New("demo").
//	    Seed(7).
//	    Stream(2, 4, 64<<10).
//	    Loss(0, 0.02).
//	    KillCore(500*time.Millisecond, "server", -1).
//	    AssertIntact().AssertAllComplete().
//	    Build()
type Builder struct{ s Spec }

// New starts a scenario with defaults (1 client, 2+2 cores, 30s cap).
func New(name string) *Builder {
	return &Builder{s: Spec{Name: name}}
}

// Describe sets the human-readable description.
func (b *Builder) Describe(d string) *Builder { b.s.Description = d; return b }

// Seed fixes the run's random seed.
func (b *Builder) Seed(n int64) *Builder { b.s.Seed = n; return b }

// Duration caps the run.
func (b *Builder) Duration(d time.Duration) *Builder { b.s.Duration = Duration(d); return b }

// Clients sets the number of client services.
func (b *Builder) Clients(n int) *Builder { b.s.Topology.Clients = n; return b }

// Cores sizes the server and client fast-path core counts.
func (b *Builder) Cores(server, client int) *Builder {
	b.s.Topology.ServerCores = server
	b.s.Topology.ClientCores = client
	return b
}

// PinCores disables core scaling (all configured cores stay active) —
// required before core-fault events so kills hit live cores.
func (b *Builder) PinCores() *Builder { b.s.Topology.DisableCoreScaling = true; return b }

// Timers overrides the failure-domain timers (zero fields keep the
// scenario defaults).
func (b *Builder) Timers(t Topology) *Builder {
	if t.HandshakeRTO != 0 {
		b.s.Topology.HandshakeRTO = t.HandshakeRTO
	}
	if t.MaxRetransmits != 0 {
		b.s.Topology.MaxRetransmits = t.MaxRetransmits
	}
	if t.AppTimeout != 0 {
		b.s.Topology.AppTimeout = t.AppTimeout
	}
	if t.SlowPathTimeout != 0 {
		b.s.Topology.SlowPathTimeout = t.SlowPathTimeout
	}
	if t.CoreTimeout != 0 {
		b.s.Topology.CoreTimeout = t.CoreTimeout
	}
	if t.ListenBacklog != 0 {
		b.s.Topology.ListenBacklog = t.ListenBacklog
	}
	return b
}

// Persist tunes the persist timer: the base probe interval and the
// unanswered-probe budget for zero-window stalls (0 keeps defaults).
func (b *Builder) Persist(rto time.Duration, probes int) *Builder {
	b.s.Topology.PersistRTO = Duration(rto)
	b.s.Topology.MaxPersistProbes = probes
	return b
}

// Keepalive arms TCP keepalives on every service: probe after idle of
// idle, re-probe every interval, declare the peer dead after probes
// unanswered probes.
func (b *Builder) Keepalive(idle, interval time.Duration, probes int) *Builder {
	b.s.Topology.KeepaliveTime = Duration(idle)
	b.s.Topology.KeepaliveInterval = Duration(interval)
	b.s.Topology.KeepaliveProbes = probes
	return b
}

// CloseLifecycle overrides the close-side timers: the FIN_WAIT_2 bound
// and the TIME_WAIT quarantine length (0 keeps defaults).
func (b *Builder) CloseLifecycle(finWait2, timeWait time.Duration) *Builder {
	b.s.Topology.FinWait2Timeout = Duration(finWait2)
	b.s.Topology.TimeWait = Duration(timeWait)
	return b
}

// Link installs the netem-grade link model: rate, bounded queue,
// propagation delay, and an optional ECN CE-mark threshold.
func (b *Builder) Link(rateMbps float64, queuePkts int, delay time.Duration, ecnPkts int) *Builder {
	b.s.Link = &LinkSpec{
		RateMbps: rateMbps, QueuePkts: queuePkts,
		Delay: Duration(delay), ECNPkts: ecnPkts,
	}
	return b
}

// Stream configures a bulk-transfer workload: conns workers per client,
// each doing transfers transfers of size bytes (SHA-256 verified).
func (b *Builder) Stream(conns, transfers, size int) *Builder {
	b.s.Workload = Workload{Kind: WorkStream, Conns: conns, Transfers: transfers, TransferBytes: size}
	return b
}

// Reconnect makes stream workers open a fresh connection per transfer
// (connection churn).
func (b *Builder) Reconnect() *Builder { b.s.Workload.Reconnect = true; return b }

// ServerStall wedges the stream server: it stops reading for d after
// consuming a connection's first length header, forcing the sender
// against a zero window. firstConnOnly restricts the wedge to the
// first accepted connection (retries land on a healthy handler).
func (b *Builder) ServerStall(d time.Duration, firstConnOnly bool) *Builder {
	b.s.Workload.ServerStall = Duration(d)
	b.s.Workload.StallFirstConnOnly = firstConnOnly
	return b
}

// RPC configures an echo-RPC workload: conns workers per client, each
// making calls calls of msgBytes, reconnecting every callsPerConn
// (0 = never).
func (b *Builder) RPC(conns, calls, msgBytes, callsPerConn int) *Builder {
	b.s.Workload = Workload{
		Kind: WorkRPC, Conns: conns, Calls: calls,
		MsgBytes: msgBytes, CallsPerConn: callsPerConn,
	}
	return b
}

// SynCookies sets the server's SYN-cookie mode ("" = auto under
// pressure, "always", "off").
func (b *Builder) SynCookies(mode string) *Builder { b.s.Topology.SynCookies = mode; return b }

// HandshakeStripes sets the server's handshake-table stripe count.
func (b *Builder) HandshakeStripes(n int) *Builder { b.s.Topology.HandshakeStripes = n; return b }

// ChallengeAckPerSec sets the server's RFC 5961 challenge-ACK budget.
func (b *Builder) ChallengeAckPerSec(n int) *Builder {
	b.s.Topology.ChallengeAckPerSec = n
	return b
}

// Buffers sets the server's per-connection payload buffer sizes
// (0 keeps the 256 KiB service default).
func (b *Builder) Buffers(rx, tx int) *Builder {
	b.s.Topology.RxBufBytes = rx
	b.s.Topology.TxBufBytes = tx
	return b
}

// Quotas sets the server's resource-governor capacities, per-app
// quotas, and pressure watermarks (zero fields keep defaults:
// uncapped pools, 70/55 watermarks).
func (b *Builder) Quotas(t Topology) *Builder {
	if t.MaxPayloadBytes != 0 {
		b.s.Topology.MaxPayloadBytes = t.MaxPayloadBytes
	}
	if t.MaxFlows != 0 {
		b.s.Topology.MaxFlows = t.MaxFlows
	}
	if t.MaxHalfOpen != 0 {
		b.s.Topology.MaxHalfOpen = t.MaxHalfOpen
	}
	if t.AppMaxFlows != 0 {
		b.s.Topology.AppMaxFlows = t.AppMaxFlows
	}
	if t.AppMaxPayloadBytes != 0 {
		b.s.Topology.AppMaxPayloadBytes = t.AppMaxPayloadBytes
	}
	if t.PressureEngagePct != 0 {
		b.s.Topology.PressureEngagePct = t.PressureEngagePct
	}
	if t.PressureReleasePct != 0 {
		b.s.Topology.PressureReleasePct = t.PressureReleasePct
	}
	if t.IdleReclaimAge != 0 {
		b.s.Topology.IdleReclaimAge = t.IdleReclaimAge
	}
	if t.ReclaimBatch != 0 {
		b.s.Topology.ReclaimBatch = t.ReclaimBatch
	}
	return b
}

// --- impairments ------------------------------------------------------

func (b *Builder) imp(at time.Duration, i Impairment) *Builder {
	i.At = Duration(at)
	b.s.Impairments = append(b.s.Impairments, i)
	return b
}

// Loss sets uniform packet loss at probability p from at on.
func (b *Builder) Loss(at time.Duration, p float64) *Builder {
	return b.imp(at, Impairment{Kind: ImpLoss, Rate: p})
}

// BurstLoss enables Gilbert–Elliott burst loss from at on.
func (b *Builder) BurstLoss(at time.Duration, ge GESpec) *Builder {
	return b.imp(at, Impairment{Kind: ImpBurstLoss, GE: &ge})
}

// ClearLoss removes uniform and burst loss at at.
func (b *Builder) ClearLoss(at time.Duration) *Builder {
	return b.imp(at, Impairment{Kind: ImpClearLoss})
}

// Partition blocks the host pair from at until Heal.
func (b *Builder) Partition(at time.Duration, hostA, hostB string) *Builder {
	return b.imp(at, Impairment{Kind: ImpPartition, A: hostA, B: hostB})
}

// Heal removes the pair's partition ("" , "" heals everything).
func (b *Builder) Heal(at time.Duration, hostA, hostB string) *Builder {
	return b.imp(at, Impairment{Kind: ImpHeal, A: hostA, B: hostB})
}

// LinkDown takes host's link down at at.
func (b *Builder) LinkDown(at time.Duration, host string) *Builder {
	return b.imp(at, Impairment{Kind: ImpLinkDown, Host: host})
}

// LinkUp restores host's link at at.
func (b *Builder) LinkUp(at time.Duration, host string) *Builder {
	return b.imp(at, Impairment{Kind: ImpLinkUp, Host: host})
}

// Flap runs count down/up cycles on host starting at at.
func (b *Builder) Flap(at time.Duration, host string, count int, down, up time.Duration) *Builder {
	return b.imp(at, Impairment{Kind: ImpFlap, Host: host, Count: count, Down: Duration(down), Up: Duration(up)})
}

// Delay sets the propagation delay at at.
func (b *Builder) Delay(at time.Duration, d time.Duration) *Builder {
	return b.imp(at, Impairment{Kind: ImpDelay, Delay: Duration(d)})
}

// Rate changes the link-model rate at at (needs Link).
func (b *Builder) Rate(at time.Duration, mbps float64) *Builder {
	return b.imp(at, Impairment{Kind: ImpRate, Rate: mbps})
}

// --- faults -----------------------------------------------------------

func (b *Builder) fault(at time.Duration, f FaultEvent) *Builder {
	f.At = Duration(at)
	b.s.Faults = append(b.s.Faults, f)
	return b
}

// KillApp crashes client target's workload context app at at.
func (b *Builder) KillApp(at time.Duration, target string, app int) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultAppKill, Target: target, App: app})
}

// StallApp wedges the context's heartbeat for d.
func (b *Builder) StallApp(at time.Duration, target string, app int, d time.Duration) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultAppStall, Target: target, App: app, For: Duration(d)})
}

// KillSlowPath crashes target's slow path at at.
func (b *Builder) KillSlowPath(at time.Duration, target string) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultSlowKill, Target: target})
}

// StallSlowPath wedges target's slow path for d.
func (b *Builder) StallSlowPath(at time.Duration, target string, d time.Duration) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultSlowStall, Target: target, For: Duration(d)})
}

// PanicSlowPath injects a contained panic into target's control loop.
func (b *Builder) PanicSlowPath(at time.Duration, target string) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultSlowPanic, Target: target})
}

// RestartSlowPath warm-restarts target's slow path at at.
func (b *Builder) RestartSlowPath(at time.Duration, target string) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultSlowRestart, Target: target})
}

// KillCore crashes target's fast-path core (-1 = busiest at fire time).
func (b *Builder) KillCore(at time.Duration, target string, core int) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultCoreKill, Target: target, Core: core})
}

// StallCore wedges target's core for d.
func (b *Builder) StallCore(at time.Duration, target string, core int, d time.Duration) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultCoreStall, Target: target, Core: core, For: Duration(d)})
}

// PanicCore injects a contained panic on target's core.
func (b *Builder) PanicCore(at time.Duration, target string, core int) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultCorePanic, Target: target, Core: core})
}

// ReviveCore relaunches target's crashed core (explicit index).
func (b *Builder) ReviveCore(at time.Duration, target string, core int) *Builder {
	return b.fault(at, FaultEvent{Kind: FaultCoreRevive, Target: target, Core: core})
}

// --- attacks ----------------------------------------------------------

// SynFlood opens a spoofed-SYN flood window on port from at for dur at
// rate packets/sec (0 = 50000; port 0 = the workload port).
func (b *Builder) SynFlood(at, dur time.Duration, rate int, port uint16) *Builder {
	b.s.Attacks = append(b.s.Attacks, Attack{
		At: Duration(at), For: Duration(dur), Kind: AttackSynFlood, Rate: rate, Port: port,
	})
	return b
}

// --- assertions -------------------------------------------------------

// AssertIntact requires SHA-256-verified content on every completed op.
func (b *Builder) AssertIntact() *Builder { b.s.Assert.Intact = true; return b }

// AssertAllComplete requires every scheduled op to finish in time.
func (b *Builder) AssertAllComplete() *Builder { b.s.Assert.AllComplete = true; return b }

// AssertRecovery bounds last-event-to-completion time.
func (b *Builder) AssertRecovery(max time.Duration) *Builder {
	b.s.Assert.MaxRecovery = Duration(max)
	return b
}

// AssertFlowsMigrated requires at least n flows migrated off failed
// cores.
func (b *Builder) AssertFlowsMigrated(n int) *Builder { b.s.Assert.MinFlowsMigrated = n; return b }

// AssertCoreFailures requires the core watchdog to have declared at
// least n failures.
func (b *Builder) AssertCoreFailures(n int) *Builder { b.s.Assert.MinCoreFailures = n; return b }

// AssertAppsReaped requires at least n app contexts reaped.
func (b *Builder) AssertAppsReaped(n int) *Builder { b.s.Assert.MinAppsReaped = n; return b }

// AssertDegraded requires the fast path to have observed a slow-path
// outage.
func (b *Builder) AssertDegraded() *Builder { b.s.Assert.RequireDegraded = true; return b }

// AssertServerAborts bounds server-side flow aborts.
func (b *Builder) AssertServerAborts(max int) *Builder {
	b.s.Assert.MaxServerAborts = max
	b.s.Assert.BoundServerAborts = true
	return b
}

// AssertDropBound bounds a server drop counter by cause name.
func (b *Builder) AssertDropBound(cause string, max uint64) *Builder {
	if b.s.Assert.DropCauses == nil {
		b.s.Assert.DropCauses = map[string]uint64{}
	}
	b.s.Assert.DropCauses[cause] = max
	return b
}

// AssertCookiesValidated requires at least n connections reconstructed
// from SYN-cookie ACKs on the server.
func (b *Builder) AssertCookiesValidated(n int) *Builder {
	b.s.Assert.MinCookiesValidated = n
	return b
}

// AssertProbeP99 enables the cross-stripe dial prober and bounds its p99
// handshake latency during attack windows.
func (b *Builder) AssertProbeP99(max time.Duration) *Builder {
	b.s.Assert.ProbeP99 = Duration(max)
	return b
}

// AssertRttP99Under bounds the server's p99 smoothed RTT across the
// whole run, read from the report's embedded telemetry time series.
func (b *Builder) AssertRttP99Under(max time.Duration) *Builder {
	b.s.Assert.RttP99Under = Duration(max)
	return b
}

// AssertPressureLevel requires the server's degradation ladder to have
// reached at least rung n during the run.
func (b *Builder) AssertPressureLevel(n int) *Builder {
	b.s.Assert.MinPressureLevel = n
	return b
}

// AssertPersistProbes requires at least n zero-window probes sent
// across all services.
func (b *Builder) AssertPersistProbes(n int) *Builder {
	b.s.Assert.MinPersistProbes = n
	return b
}

// AssertPeerDead requires at least n peer-dead verdicts (persist or
// keepalive budget exhaustion) across all services.
func (b *Builder) AssertPeerDead(n int) *Builder {
	b.s.Assert.MinPeerDead = n
	return b
}

// AssertNoPeerDead forbids peer-dead verdicts anywhere: stalls that
// resolve must never be misclassified as dead peers.
func (b *Builder) AssertNoPeerDead() *Builder {
	b.s.Assert.MaxPeerDead = 0
	b.s.Assert.BoundPeerDead = true
	return b
}

// AssertNoReaper requires dead-peer detection to have come from the
// liveness machinery alone: no app contexts reaped, no flows LRU
// idle-reclaimed, on any service.
func (b *Builder) AssertNoReaper() *Builder {
	b.s.Assert.NoReaperFired = true
	return b
}

// AssertPoolDrained bounds a governed pool's occupancy at the end of
// the run (after a settle window); 0 asserts it returns exactly to
// empty.
func (b *Builder) AssertPoolDrained(pool string, max int64) *Builder {
	if b.s.Assert.MaxPoolUsed == nil {
		b.s.Assert.MaxPoolUsed = map[string]int64{}
	}
	b.s.Assert.MaxPoolUsed[pool] = max
	return b
}

// Build validates and returns the spec.
func (b *Builder) Build() (*Spec, error) {
	s := b.s // copy; the builder stays reusable
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// MustBuild panics on validation errors (library scenarios, tests).
func (b *Builder) MustBuild() *Spec {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
