package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	tas "repro"
	"repro/internal/telemetry"
)

// EventRecord is one applied timeline entry: the scheduled offset (part
// of the deterministic timeline) plus the wall-clock offset it actually
// fired at (measured, not deterministic).
type EventRecord struct {
	AtMS   float64 `json:"at_ms"`            // scheduled offset
	WallMS float64 `json:"wall_ms"`          // applied offset (measured)
	Kind   string  `json:"kind"`             // impairment or fault kind
	Target string  `json:"target,omitempty"` // host/service the event hit
	Detail string  `json:"detail,omitempty"` // resolved parameters
}

// OpRecord is one workload operation (a stream transfer or an RPC
// batch): identity and payload digest are seed-deterministic; attempts
// and timing are measured.
type OpRecord struct {
	Client   int    `json:"client"`
	Worker   int    `json:"worker"`
	Op       int    `json:"op"`
	SHA      string `json:"sha,omitempty"` // payload SHA-256 (stream)
	Bytes    int    `json:"bytes"`
	Done     bool   `json:"done"`
	Intact   bool   `json:"intact"`
	Attempts int    `json:"attempts"`
}

// WorkloadResult aggregates the workload outcome.
type WorkloadResult struct {
	Kind        string     `json:"kind"`
	Expected    int        `json:"expected"`
	Completed   int        `json:"completed"`
	Failed      int        `json:"failed"`
	Mismatches  int        `json:"mismatches"`
	BytesMoved  int64      `json:"bytes_moved"`
	Retries     int        `json:"retries"`      // reconnect/redial attempts beyond the first
	AppRestarts int        `json:"app_restarts"` // contexts rebuilt after app-kill reaping
	Ops         []OpRecord `json:"ops,omitempty"`
}

// ProbeResult summarizes the control-port prober: dial-handshake
// latency on a port striped away from the attacked one, measured only
// while attack windows were open.
type ProbeResult struct {
	Dials int     `json:"dials"`
	Fails int     `json:"fails"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// AssertionResult is one machine-checked postcondition.
type AssertionResult struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// FabricSnapshot counts what the network did to the run.
type FabricSnapshot struct {
	Delivered      uint64 `json:"delivered"`
	Dropped        uint64 `json:"dropped"`
	QueueDrops     uint64 `json:"queue_drops"`
	CEMarks        uint64 `json:"ce_marks"`
	DownDrops      uint64 `json:"down_drops"`
	PartitionDrops uint64 `json:"partition_drops"`
	BurstDrops     uint64 `json:"burst_drops"`
}

// ServiceSnapshot is one service's robustness counters at run end.
type ServiceSnapshot struct {
	Name string `json:"name"`
	tas.ServiceStats
	Restarts uint64 `json:"slowpath_restarts"`
}

// Report is the structured result of one scenario run. The Timeline's
// scheduled fields, the per-op payload digests, and the pass/fail
// outcome are seed-deterministic; wall timings and raw counters are
// measured. DeterministicDigest hashes exactly the reproducible part.
type Report struct {
	Scenario    string    `json:"scenario"`
	Description string    `json:"description,omitempty"`
	Seed        int64     `json:"seed"`
	StartedAt   time.Time `json:"started_at"`
	WallMS      float64   `json:"wall_ms"`
	Pass        bool      `json:"pass"`

	Timeline   []EventRecord     `json:"timeline"`
	Workload   WorkloadResult    `json:"workload"`
	Assertions []AssertionResult `json:"assertions"`

	RecoveryMS float64 `json:"recovery_ms"` // last timeline event end -> workload completion

	// Adversarial-traffic results: spoofed segments injected by attack
	// windows, and the striping prober's latency summary.
	SynsSent int64        `json:"syns_sent,omitempty"`
	Probe    *ProbeResult `json:"probe,omitempty"`

	Server  ServiceSnapshot   `json:"server"`
	Clients []ServiceSnapshot `json:"clients"`
	Fabric  FabricSnapshot    `json:"fabric"`

	// Metrics is the server's telemetry registry at run end (opt-in via
	// RunOptions.Metrics); FlightFlows counts flows the flight recorder
	// retired or still tracks.
	Metrics     []telemetry.Sample `json:"metrics,omitempty"`
	FlightFlows int                `json:"flight_flows,omitempty"`

	// TimeSeries is the server's recorded registry trajectory — latency
	// quantiles, ring depths, and counters sampled every 100ms across
	// the fault timeline. Measured, so excluded from the deterministic
	// projection by construction.
	TimeSeries *telemetry.SeriesDump `json:"time_series,omitempty"`
}

// WriteJSON writes the full report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// deterministic is the seed-reproducible projection of a report: two
// runs of the same spec with the same seed must produce byte-identical
// serializations of this struct.
type deterministic struct {
	Scenario  string   `json:"scenario"`
	Seed      int64    `json:"seed"`
	Timeline  []detEvt `json:"timeline"`
	Expected  int      `json:"expected"`
	Completed int      `json:"completed"`
	Ops       []detOp  `json:"ops"`
	Asserts   []detAs  `json:"asserts"`
	Pass      bool     `json:"pass"`
}

type detEvt struct {
	AtMS   float64 `json:"at_ms"`
	Kind   string  `json:"kind"`
	Target string  `json:"target,omitempty"`
}

type detOp struct {
	Client, Worker, Op int
	SHA                string
	Bytes              int
	Done, Intact       bool
}

type detAs struct {
	Name string
	Pass bool
}

// Deterministic returns the canonical JSON of the report's reproducible
// projection, and DeterministicDigest its SHA-256 — the value the
// determinism regression diffs across same-seed runs.
func (r *Report) Deterministic() []byte {
	d := deterministic{
		Scenario:  r.Scenario,
		Seed:      r.Seed,
		Expected:  r.Workload.Expected,
		Completed: r.Workload.Completed,
		Pass:      r.Pass,
	}
	for _, e := range r.Timeline {
		d.Timeline = append(d.Timeline, detEvt{AtMS: e.AtMS, Kind: e.Kind, Target: e.Target})
	}
	ops := append([]OpRecord(nil), r.Workload.Ops...)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Client != ops[j].Client {
			return ops[i].Client < ops[j].Client
		}
		if ops[i].Worker != ops[j].Worker {
			return ops[i].Worker < ops[j].Worker
		}
		return ops[i].Op < ops[j].Op
	})
	for _, o := range ops {
		d.Ops = append(d.Ops, detOp{
			Client: o.Client, Worker: o.Worker, Op: o.Op,
			SHA: o.SHA, Bytes: o.Bytes, Done: o.Done, Intact: o.Intact,
		})
	}
	for _, a := range r.Assertions {
		d.Asserts = append(d.Asserts, detAs{Name: a.Name, Pass: a.Pass})
	}
	b, _ := json.Marshal(d)
	return b
}

// DeterministicDigest hashes the reproducible projection.
func (r *Report) DeterministicDigest() string {
	sum := sha256.Sum256(r.Deterministic())
	return hex.EncodeToString(sum[:])
}

// Summary renders a short human-readable result.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	out := fmt.Sprintf("scenario %-24s seed=%-4d %s  (%.0fms wall, %d/%d ops, %d timeline events)\n",
		r.Scenario, r.Seed, verdict, r.WallMS, r.Workload.Completed, r.Workload.Expected, len(r.Timeline))
	for _, a := range r.Assertions {
		mark := "ok  "
		if !a.Pass {
			mark = "FAIL"
		}
		out += fmt.Sprintf("  %s %-20s %s\n", mark, a.Name, a.Detail)
	}
	return out
}
