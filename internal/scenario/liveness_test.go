package scenario

import (
	"testing"
	"time"
)

// TestLibraryZeroWindowStall runs the receiver-limited wedge end to
// end: senders survive a 1s zero-window stall on persist probes alone
// and every byte arrives intact with no aborts.
func TestLibraryZeroWindowStall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario")
	}
	spec, err := Lookup("zero-window-stall")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("zero-window-stall failed:\n%s", rep.Summary())
	}
	probes := rep.Server.PersistProbes
	for _, c := range rep.Clients {
		probes += c.PersistProbes
	}
	if probes == 0 {
		t.Fatal("no persist probes sent: the stall never engaged the persist timer")
	}
}

// TestLibrarySilentPeer runs the mid-stream blackhole end to end: the
// server's keepalives — not the reaper, not idle-reclaim — give the
// dead peer up, and the workload completes after the link heals.
func TestLibrarySilentPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario")
	}
	spec, err := Lookup("silent-peer")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("silent-peer failed:\n%s", rep.Summary())
	}
}

// TestZeroWindowNeverReopens is the budget-side twin of the library's
// zero-window-stall: the first accepted connection's handler never
// resumes reading, so the sender's persist budget runs dry and the
// flow must end in a peer-dead verdict. The retry lands on a healthy
// handler (StallFirstConnOnly) and the transfer still completes, so
// the same run proves both the abort and the recovery.
func TestZeroWindowNeverReopens(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario")
	}
	spec := New("zero-window-never-reopens").
		Describe("The first connection's server handler wedges forever: the sender's "+
			"persist budget (4 probes at 50ms base) exhausts into a peer-dead abort, "+
			"the worker redials onto a healthy handler, and the transfer completes.").
		Seed(101).
		Duration(45*time.Second).
		Buffers(16<<10, 0).
		Persist(50*time.Millisecond, 4).
		Stream(1, 1, 256<<10).
		ServerStall(40*time.Second, true).
		AssertIntact().
		AssertAllComplete().
		AssertPersistProbes(3).
		AssertPeerDead(1).
		AssertNoReaper().
		MustBuild()
	rep, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("zero-window-never-reopens failed:\n%s", rep.Summary())
	}
	var zw uint64
	for _, c := range rep.Clients {
		zw += c.PeerDeadZeroWindow
	}
	if zw == 0 {
		t.Fatal("the sender never declared the wedged peer dead via the persist budget")
	}
	if rep.Workload.Retries == 0 {
		t.Fatal("the worker never retried: the wedge did not force a reconnect")
	}
}
