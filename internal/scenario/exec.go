package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	tas "repro"
	"repro/internal/apps/echo"
	"repro/internal/fastpath"
	"repro/internal/flowstate"
)

// RunOptions tunes one execution (not part of the deterministic spec).
type RunOptions struct {
	// Metrics includes the server's telemetry registry in the report.
	Metrics bool
	// Log, when non-nil, receives a progress narration of the run.
	Log io.Writer
}

const (
	serverPort = 7000
	// probePort carries the striping control experiment: with the default
	// 16 handshake stripes, 7000 hashes to stripe 3 and 7001 to stripe 13,
	// so flood pressure on the workload port and probe dials never share a
	// handshake-table lock.
	probePort = 7001
	opTimeout = 2 * time.Second // bound on any single blocking Read/Write/Dial
	maxWait   = 30 * time.Second
)

// Run validates and executes a scenario against a live fabric, driving
// the timeline deterministically from spec.Seed, and returns the run
// report. A non-nil error means the run could not be set up (bad spec,
// service construction); assertion failures are reported via
// Report.Pass, not an error.
func Run(spec *Spec, opt RunOptions) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r, err := newRun(spec, opt)
	if err != nil {
		return nil, err
	}
	defer r.teardown()
	return r.execute(), nil
}

// workerSlot tracks one workload worker's current app context so fault
// events can kill/stall the live context.
type workerSlot struct {
	mu  sync.Mutex
	ctx *tas.Context
}

// run is the live state of one executing scenario.
type run struct {
	spec *Spec
	opt  RunOptions

	fab      *tas.Fabric
	srv      *tas.Service
	clients  []*tas.Service
	slots    [][]*workerSlot // [client][worker]
	attacker *tas.Attacker   // raw spoofed-segment source (attack specs)

	linkMu  sync.Mutex
	linkCfg *tas.LinkConfig // current link model (nil = flat latency)

	stop chan struct{}

	mu          sync.Mutex
	ops         []OpRecord
	retries     int
	appRestarts int
	bytesMoved  int64
	timeline    []EventRecord
	synsSent    int64
	probeLat    []time.Duration // successful probe dials during attack windows
	probeFails  int
	stallUsed   bool // the one StallFirstConnOnly slot has been claimed

	start        time.Time
	lastEventEnd time.Duration // scheduled end (At+For) of the last timeline entry
}

func (r *run) logf(format string, args ...any) {
	if r.opt.Log != nil {
		fmt.Fprintf(r.opt.Log, format+"\n", args...)
	}
}

// baseConfig maps a scenario topology onto service configuration. The
// defaults are chaos-tuned: fast handshake retries, a 10ms control
// interval (20ms base RTO), and failure-domain timers that converge in
// hundreds of milliseconds while staying above heartbeat periods even
// under the race detector (CoreTimeout 400ms > 4x the 100ms
// blocked-core beat). linkBps calibrates congestion control to the
// scenario's link model (0 = the 40 Gbps default).
func baseConfig(t Topology, cores int, server bool, linkBps float64) tas.Config {
	cfg := tas.Config{
		FastPathCores:      cores,
		DisableCoreScaling: t.DisableCoreScaling,
		HandshakeRTO:       25 * time.Millisecond,
		HandshakeRetries:   7,
		MaxRetransmits:     12,
		AppTimeout:         300 * time.Millisecond,
		SlowPathTimeout:    150 * time.Millisecond,
		CoreTimeout:        400 * time.Millisecond,
		ControlInterval:    10 * time.Millisecond,
		CongestionControl:  t.CongestionControl,
		LinkRateBps:        linkBps,
	}
	if t.HandshakeRTO > 0 {
		cfg.HandshakeRTO = t.HandshakeRTO.D()
	}
	if t.MaxRetransmits > 0 {
		cfg.MaxRetransmits = t.MaxRetransmits
	}
	if t.AppTimeout > 0 {
		cfg.AppTimeout = t.AppTimeout.D()
	}
	if t.SlowPathTimeout > 0 {
		cfg.SlowPathTimeout = t.SlowPathTimeout.D()
	}
	if t.CoreTimeout > 0 {
		cfg.CoreTimeout = t.CoreTimeout.D()
	}
	// Peer-liveness timers apply to every service: both ends of a
	// blackholed link must be able to give the silent peer up.
	if t.PersistRTO > 0 {
		cfg.PersistRTO = t.PersistRTO.D()
	}
	if t.MaxPersistProbes > 0 {
		cfg.MaxPersistProbes = t.MaxPersistProbes
	}
	if t.KeepaliveTime > 0 {
		cfg.KeepaliveTime = t.KeepaliveTime.D()
	}
	if t.KeepaliveInterval > 0 {
		cfg.KeepaliveInterval = t.KeepaliveInterval.D()
	}
	if t.KeepaliveProbes > 0 {
		cfg.KeepaliveProbes = t.KeepaliveProbes
	}
	if t.FinWait2Timeout > 0 {
		cfg.FinWait2Timeout = t.FinWait2Timeout.D()
	}
	if t.TimeWait > 0 {
		cfg.TimeWaitDuration = t.TimeWait.D()
	}
	if server {
		cfg.ListenBacklog = t.ListenBacklog
		cfg.SynCookies = t.SynCookies
		cfg.HandshakeStripes = t.HandshakeStripes
		cfg.ChallengeAckPerSec = t.ChallengeAckPerSec
		cfg.RxBufSize = t.RxBufBytes
		cfg.TxBufSize = t.TxBufBytes
		cfg.MaxPayloadBytes = t.MaxPayloadBytes
		cfg.MaxFlows = t.MaxFlows
		cfg.MaxHalfOpen = t.MaxHalfOpen
		cfg.AppMaxFlows = t.AppMaxFlows
		cfg.AppMaxPayloadBytes = t.AppMaxPayloadBytes
		cfg.PressureEngagePct = t.PressureEngagePct
		cfg.PressureReleasePct = t.PressureReleasePct
		cfg.IdleReclaimAge = t.IdleReclaimAge.D()
		cfg.ReclaimBatch = t.ReclaimBatch
		cfg.Telemetry.Enabled = true
	}
	return cfg
}

func clientAddr(k int) string { return fmt.Sprintf("10.0.1.%d", k+1) }

// hostAddr resolves a spec host name to its fabric address.
func hostAddr(name string) string {
	if name == "server" {
		return "10.0.0.1"
	}
	var k int
	fmt.Sscanf(name, "client%d", &k)
	return clientAddr(k)
}

func newRun(spec *Spec, opt RunOptions) (*run, error) {
	r := &run{
		spec: spec,
		opt:  opt,
		fab:  tas.NewFabric(),
		stop: make(chan struct{}),
	}
	// Determinism: the fabric's loss process draws from the scenario
	// seed, not the construction-time default.
	r.fab.Reseed(spec.Seed)
	var linkBps float64
	if l := spec.Link; l != nil {
		cfg := tas.LinkConfig{
			RateBps:      l.RateMbps * 1e6,
			QueueCap:     l.QueuePkts,
			PropDelay:    l.Delay.D(),
			ECNThreshold: l.ECNPkts,
		}
		r.linkCfg = &cfg
		r.fab.SetLink(cfg)
		linkBps = cfg.RateBps
	}
	srv, err := r.fab.NewService("10.0.0.1", baseConfig(spec.Topology, spec.Topology.ServerCores, true, linkBps))
	if err != nil {
		return nil, fmt.Errorf("scenario: server: %w", err)
	}
	r.srv = srv
	for k := 0; k < spec.Topology.Clients; k++ {
		cli, err := r.fab.NewService(clientAddr(k), baseConfig(spec.Topology, spec.Topology.ClientCores, false, linkBps))
		if err != nil {
			r.teardown()
			return nil, fmt.Errorf("scenario: client %d: %w", k, err)
		}
		r.clients = append(r.clients, cli)
		slots := make([]*workerSlot, spec.Workload.Conns)
		for j := range slots {
			slots[j] = &workerSlot{}
		}
		r.slots = append(r.slots, slots)
	}
	if len(spec.Attacks) > 0 {
		atk, err := r.fab.NewAttacker("10.99.0.1")
		if err != nil {
			r.teardown()
			return nil, fmt.Errorf("scenario: attacker: %w", err)
		}
		r.attacker = atk
	}
	return r, nil
}

func (r *run) teardown() {
	if r.attacker != nil {
		r.attacker.Close()
		r.attacker = nil
	}
	if r.srv != nil {
		r.srv.Close()
		r.srv = nil
	}
	for _, c := range r.clients {
		c.Close()
	}
	r.clients = nil
}

func (r *run) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// service resolves a fault target name.
func (r *run) service(target string) *tas.Service {
	if target == "" || target == "server" {
		return r.srv
	}
	var k int
	fmt.Sscanf(target, "client%d", &k)
	return r.clients[k]
}

// --- payloads ---------------------------------------------------------

// payloadSeed mixes the scenario seed with an op's identity; every
// random byte in the run is derived from it, so payload digests are
// part of the reproducible report.
func payloadSeed(seed int64, client, worker, op int) int64 {
	return seed + int64(client)*1_000_003 + int64(worker)*10_007 + int64(op)*101 + 1
}

func (r *run) payload(client, worker, op int) ([]byte, [32]byte) {
	b := make([]byte, r.spec.Workload.TransferBytes)
	rand.New(rand.NewSource(payloadSeed(r.spec.Seed, client, worker, op))).Read(b)
	return b, sha256.Sum256(b)
}

// --- execution --------------------------------------------------------

func (r *run) execute() *Report {
	spec := r.spec
	rep := &Report{
		Scenario:    spec.Name,
		Description: spec.Description,
		Seed:        spec.Seed,
		StartedAt:   time.Now(),
	}
	r.start = time.Now()
	r.logf("scenario %s: seed=%d clients=%d workers=%d duration<=%v",
		spec.Name, spec.Seed, spec.Topology.Clients, spec.Workload.Conns, spec.Duration.D())

	acceptDone := r.startServer()

	probeDone := make(chan struct{})
	if spec.Assert.ProbeP99 > 0 {
		go func() { defer close(probeDone); r.probeLoop() }()
	} else {
		close(probeDone)
	}

	var wg sync.WaitGroup
	for k := range r.clients {
		for j := 0; j < spec.Workload.Conns; j++ {
			wg.Add(1)
			go func(k, j int) {
				defer wg.Done()
				if spec.Workload.Kind == WorkStream {
					r.streamWorker(k, j)
				} else {
					r.rpcWorker(k, j)
				}
			}(k, j)
		}
	}
	workDone := make(chan struct{})
	go func() { wg.Wait(); close(workDone) }()

	evs := r.normalize()
	for _, ev := range evs {
		if ev.end > r.lastEventEnd {
			r.lastEventEnd = ev.end
		}
	}
	timelineDone := make(chan struct{})
	go func() { defer close(timelineDone); r.playTimeline(evs) }()

	// Attack windows hold the run open even if the workload finishes
	// early: the flood and the cross-stripe prober must run their full
	// course before the stop channel closes.
	var attackHold <-chan time.Time
	if len(spec.Attacks) > 0 {
		attackHold = time.After(time.Until(r.start.Add(r.lastEventEnd)))
	}

	capped := false
	deadline := time.After(spec.Duration.D())
	var doneAt time.Time
waitLoop:
	for workDone != nil || timelineDone != nil || attackHold != nil {
		select {
		case <-workDone:
			doneAt = time.Now()
			workDone = nil
		case <-timelineDone:
			timelineDone = nil
		case <-attackHold:
			attackHold = nil
		case <-deadline:
			capped = true
			r.logf("duration cap %v hit; stopping", spec.Duration.D())
			break waitLoop
		}
	}
	close(r.stop)
	if doneAt.IsZero() {
		// Cap hit before the workload finished: wait (bounded) for the
		// workers to observe the stop and bail out.
		waitWithTimeout(&wg, maxWait)
		doneAt = time.Now()
	}
	<-probeDone
	<-acceptDone

	rep.WallMS = float64(time.Since(r.start).Microseconds()) / 1000

	// Recovery: from the scheduled end of the last timeline entry to
	// workload completion.
	recovery := doneAt.Sub(r.start.Add(r.lastEventEnd))
	if recovery < 0 || len(r.timeline) == 0 {
		recovery = 0
	}
	rep.RecoveryMS = float64(recovery.Microseconds()) / 1000

	r.mu.Lock()
	rep.Timeline = append([]EventRecord(nil), r.timeline...)
	completed, failed, mismatches := 0, 0, 0
	for _, op := range r.ops {
		if op.Done {
			completed++
			if !op.Intact {
				mismatches++
			}
		} else {
			failed++
		}
	}
	rep.Workload = WorkloadResult{
		Kind:        spec.Workload.Kind,
		Expected:    spec.ExpectedOps(),
		Completed:   completed,
		Failed:      failed,
		Mismatches:  mismatches,
		BytesMoved:  r.bytesMoved,
		Retries:     r.retries,
		AppRestarts: r.appRestarts,
		Ops:         append([]OpRecord(nil), r.ops...),
	}
	rep.SynsSent = r.synsSent
	if r.spec.Assert.ProbeP99 > 0 {
		rep.Probe = probeSummary(r.probeLat, r.probeFails)
	}
	r.mu.Unlock()

	// Snapshots (before teardown detaches the services).
	rep.Server = ServiceSnapshot{Name: "server", ServiceStats: r.srv.Stats(), Restarts: r.srv.Restarts()}
	for k, c := range r.clients {
		rep.Clients = append(rep.Clients, ServiceSnapshot{
			Name: fmt.Sprintf("client%d", k), ServiceStats: c.Stats(), Restarts: c.Restarts(),
		})
	}
	rep.Fabric = FabricSnapshot(r.fab.Stats())
	if t := r.srv.Telemetry(); t != nil {
		rep.FlightFlows = len(t.Recorder.LiveKeys()) + len(t.Recorder.RetiredKeys())
		if r.opt.Metrics {
			rep.Metrics = t.Registry.Samples()
		}
		if t.Series != nil {
			// A final forced snapshot guarantees at least one point even
			// for runs shorter than the recorder interval.
			t.Series.Snap()
			rep.TimeSeries = t.Series.Dump()
		}
	}

	rep.Assertions = r.evaluate(rep, capped, recovery)
	rep.Pass = true
	for _, a := range rep.Assertions {
		if !a.Pass {
			rep.Pass = false
		}
	}
	r.logf("%s", rep.Summary())
	return rep
}

// waitWithTimeout waits for wg, giving up after d.
func waitWithTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// --- server side ------------------------------------------------------

func (r *run) startServer() <-chan struct{} {
	done := make(chan struct{})
	sctx := r.srv.NewContext()
	ln, err := sctx.Listen(serverPort)
	if err != nil {
		// Validated spec; a listen failure is a harness bug surfaced as
		// zero completed ops.
		r.logf("listen: %v", err)
		close(done)
		return done
	}
	probeDone := make(chan struct{})
	if r.spec.Assert.ProbeP99 > 0 {
		pln, err := sctx.Listen(probePort)
		if err != nil {
			r.logf("probe listen: %v", err)
			close(probeDone)
		} else {
			go func() {
				defer close(probeDone)
				defer pln.Close()
				for {
					c, err := pln.Accept(250 * time.Millisecond)
					if err != nil {
						if r.stopped() {
							return
						}
						continue
					}
					c.Close() // the probe only measures the handshake
				}
			}()
		}
	} else {
		close(probeDone)
	}
	go func() {
		defer close(done)
		defer ln.Close()
		defer func() { <-probeDone }()
		for {
			c, err := ln.Accept(250 * time.Millisecond)
			if err != nil {
				if r.stopped() {
					return
				}
				continue
			}
			hctx := r.srv.NewContext()
			c.Rebind(hctx)
			if r.spec.Workload.Kind == WorkStream {
				go r.serveStream(c)
			} else {
				go func() {
					defer c.Close()
					echo.Serve(timeoutRW{c: c, stop: r.stop}, r.spec.Workload.MsgBytes)
				}()
			}
		}
	}()
	return done
}

// takeStallSlot claims the single stall slot when the workload
// restricts the server-side stall to the first accepted connection.
func (r *run) takeStallSlot() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stallUsed {
		return false
	}
	r.stallUsed = true
	return true
}

// sleepStall sleeps d, waking early when the run stops.
func (r *run) sleepStall(d time.Duration) {
	select {
	case <-r.stop:
	case <-time.After(d):
	}
}

// serveStream answers length-prefixed transfers with their SHA-256.
// With Workload.ServerStall set, it wedges — stops reading — for that
// long right after consuming the connection's first length header, so
// the sender piles the body up against a zero window.
func (r *run) serveStream(c *tas.Conn) {
	defer c.Close()
	stall := r.spec.Workload.ServerStall.D()
	if stall > 0 && r.spec.Workload.StallFirstConnOnly && !r.takeStallSlot() {
		stall = 0
	}
	hdr := make([]byte, 8)
	buf := make([]byte, 32<<10)
	for {
		if err := r.readFull(c, hdr); err != nil {
			return
		}
		n := binary.BigEndian.Uint64(hdr)
		if n == 0 || n > 1<<30 {
			return
		}
		if stall > 0 {
			r.sleepStall(stall)
			stall = 0 // only the first transfer wedges
		}
		h := sha256.New()
		left := int(n)
		for left > 0 {
			chunk := buf
			if left < len(chunk) {
				chunk = chunk[:left]
			}
			if err := r.readFull(c, chunk); err != nil {
				return
			}
			h.Write(chunk)
			left -= len(chunk)
		}
		sum := h.Sum(nil)
		if _, err := c.WriteTimeout(sum, opTimeout); err != nil {
			return
		}
	}
}

// readFull fills buf, retrying bounded-read timeouts until the run
// stops; any other error (EOF, reset, app dead) is returned.
func (r *run) readFull(c *tas.Conn, buf []byte) error {
	got := 0
	for got < len(buf) {
		// Check stop per iteration: against a slow link, reads make
		// continuous partial progress and would otherwise never observe
		// the duration cap.
		if got > 0 && r.stopped() {
			return errStopped
		}
		n, err := c.ReadTimeout(buf[got:], opTimeout)
		got += n
		if err != nil {
			if tas.ErrTimeout(err) && !r.stopped() {
				continue
			}
			return err
		}
	}
	return nil
}

// --- client workers ---------------------------------------------------

var errStopped = errors.New("scenario: run stopped")

// freshCtx replaces (or lazily creates) a worker's app context.
func (r *run) freshCtx(client, worker int, rebuild bool) *tas.Context {
	s := r.slots[client][worker]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx == nil || rebuild {
		if s.ctx != nil {
			r.mu.Lock()
			r.appRestarts++
			r.mu.Unlock()
		}
		s.ctx = r.clients[client].NewContext()
	}
	return s.ctx
}

// dial connects a worker to the server, handling dead-context rebuilds.
// Returns errStopped when the run is over.
func (r *run) dial(client, worker int) (*tas.Conn, error) {
	ctx := r.freshCtx(client, worker, false)
	c, err := ctx.DialTimeout("10.0.0.1", serverPort, opTimeout)
	if err == nil {
		return c, nil
	}
	if tas.ErrAppDead(err) {
		r.freshCtx(client, worker, true)
	}
	return nil, err
}

// backoff sleeps a deterministic retry interval, aborting on stop.
func (r *run) backoff() error {
	select {
	case <-r.stop:
		return errStopped
	case <-time.After(25 * time.Millisecond):
		return nil
	}
}

func (r *run) recordOp(op OpRecord) {
	r.mu.Lock()
	r.ops = append(r.ops, op)
	if op.Done {
		r.bytesMoved += int64(op.Bytes)
	}
	r.mu.Unlock()
}

func (r *run) countRetry() {
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
}

func (r *run) streamWorker(client, worker int) {
	w := r.spec.Workload
	var conn *tas.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for op := 0; op < w.Transfers; op++ {
		payload, sum := r.payload(client, worker, op)
		rec := OpRecord{
			Client: client, Worker: worker, Op: op,
			SHA: hex.EncodeToString(sum[:]), Bytes: len(payload),
		}
		if w.Reconnect && conn != nil {
			conn.Close()
			conn = nil
		}
		for !r.stopped() {
			rec.Attempts++
			if conn == nil {
				c, err := r.dial(client, worker)
				if err != nil {
					r.countRetry()
					if r.backoff() != nil {
						break
					}
					continue
				}
				conn = c
			}
			ok, err := r.doTransfer(conn, payload, sum)
			if err == nil {
				rec.Done, rec.Intact = true, ok
				break
			}
			conn.Close()
			conn = nil
			if tas.ErrAppDead(err) {
				r.freshCtx(client, worker, true)
			}
			r.countRetry()
			if r.backoff() != nil {
				break
			}
		}
		r.recordOp(rec)
		if !rec.Done {
			return // run stopped; remaining ops are unrecorded = failed
		}
	}
}

// doTransfer sends one length-prefixed payload and checks the server's
// digest. Returns (intact, nil) on completion, or an error that forces
// a reconnect.
func (r *run) doTransfer(c *tas.Conn, payload []byte, want [32]byte) (bool, error) {
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint64(hdr, uint64(len(payload)))
	if err := r.writeFull(c, hdr); err != nil {
		return false, err
	}
	chunk := r.spec.Workload.ChunkBytes
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		if err := r.writeFull(c, payload[off:end]); err != nil {
			return false, err
		}
	}
	var got [32]byte
	if err := r.readFull(c, got[:]); err != nil {
		return false, err
	}
	return got == want, nil
}

// writeFull writes all of buf, retrying bounded-write timeouts until
// the run stops.
func (r *run) writeFull(c *tas.Conn, buf []byte) error {
	sent := 0
	for sent < len(buf) {
		// Same per-iteration stop check as readFull: partial progress
		// into a slow link must not outlive the duration cap.
		if sent > 0 && r.stopped() {
			return errStopped
		}
		n, err := c.WriteTimeout(buf[sent:], opTimeout)
		sent += n
		if err != nil {
			if tas.ErrTimeout(err) && !r.stopped() {
				continue
			}
			return err
		}
	}
	return nil
}

// timeoutRW adapts a connection to io.ReadWriter with bounded ops for
// the echo application.
type timeoutRW struct {
	c    *tas.Conn
	stop chan struct{}
}

func (t timeoutRW) Read(p []byte) (int, error)  { return t.c.ReadTimeout(p, opTimeout) }
func (t timeoutRW) Write(p []byte) (int, error) { return t.c.WriteTimeout(p, opTimeout) }

func (r *run) rpcWorker(client, worker int) {
	w := r.spec.Workload
	var conn *tas.Conn
	var ec *echo.Client
	onConn := 0
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for op := 0; op < w.Calls; op++ {
		rec := OpRecord{Client: client, Worker: worker, Op: op, Bytes: w.MsgBytes}
		if conn != nil && onConn >= w.CallsPerConn {
			conn.Close()
			conn, ec = nil, nil
			onConn = 0
		}
		for !r.stopped() {
			rec.Attempts++
			if conn == nil {
				c, err := r.dial(client, worker)
				if err != nil {
					r.countRetry()
					if r.backoff() != nil {
						break
					}
					continue
				}
				conn = c
				ec = echo.NewClient(timeoutRW{c: conn, stop: r.stop}, w.MsgBytes)
				onConn = 0
			}
			if err := ec.Call(); err != nil {
				conn.Close()
				conn, ec = nil, nil
				if tas.ErrAppDead(err) {
					r.freshCtx(client, worker, true)
				}
				r.countRetry()
				if r.backoff() != nil {
					break
				}
				continue
			}
			onConn++
			rec.Done, rec.Intact = true, true // Call verifies the echo
			break
		}
		r.recordOp(rec)
		if !rec.Done {
			return
		}
	}
}

// --- timeline ---------------------------------------------------------

// schedEvent is one normalized timeline entry.
type schedEvent struct {
	at     time.Duration
	end    time.Duration // at + For (stalls occupy a window)
	kind   string
	target string
	apply  func() string // returns the resolved-detail string
}

// normalize expands flaps and merges impairments and faults into one
// deterministic schedule, ordered by (at, original position).
func (r *run) normalize() []schedEvent {
	var evs []schedEvent
	for i, imp := range r.spec.Impairments {
		imp := imp
		if imp.Kind == ImpFlap {
			t := imp.At.D()
			for c := 0; c < imp.Count; c++ {
				down, up := t, t+imp.Down.D()
				host := imp.Host
				evs = append(evs, schedEvent{
					at: down, end: down, kind: ImpLinkDown, target: host,
					apply: func() string { r.fab.SetLinkDown(hostAddr(host), true); return "flap down" },
				})
				evs = append(evs, schedEvent{
					at: up, end: up, kind: ImpLinkUp, target: host,
					apply: func() string { r.fab.SetLinkDown(hostAddr(host), false); return "flap up" },
				})
				t = up + imp.Up.D()
			}
			continue
		}
		evs = append(evs, r.impairmentEvent(i, imp))
	}
	for _, f := range r.spec.Faults {
		evs = append(evs, r.faultEvent(f))
	}
	for i, a := range r.spec.Attacks {
		evs = append(evs, r.attackEvent(i, a))
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs
}

// attackEvent schedules one adversarial-traffic window. The flood runs
// on its own goroutine so the timeline player is free to fire later
// events while the attack is still in progress.
func (r *run) attackEvent(idx int, a Attack) schedEvent {
	port := a.Port
	if port == 0 {
		port = serverPort
	}
	ev := schedEvent{
		at: a.At.D(), end: a.At.D() + a.For.D(),
		kind: a.Kind, target: fmt.Sprintf("server:%d", port),
	}
	ev.apply = func() string {
		rng := rand.New(rand.NewSource(r.spec.Seed + int64(idx)*104729 + 13))
		end := r.start.Add(ev.end)
		go func() {
			// Burst every 2ms: at 50K pps that is 100 spoofed SYNs per
			// tick, comfortably inside one fabric-delivery quantum.
			const tick = 2 * time.Millisecond
			per := int(int64(a.Rate) * int64(tick) / int64(time.Second))
			if per < 1 {
				per = 1
			}
			tk := time.NewTicker(tick)
			defer tk.Stop()
			for time.Now().Before(end) && !r.stopped() {
				n, _ := r.attacker.SynBurst("10.0.0.1", port, per, rng)
				r.mu.Lock()
				r.synsSent += int64(n)
				r.mu.Unlock()
				select {
				case <-r.stop:
					return
				case <-tk.C:
				}
			}
		}()
		return fmt.Sprintf("spoofed SYN flood: %d pps on port %d for %v", a.Rate, port, a.For.D())
	}
	return ev
}

// attackWindow reports whether offset el falls inside any attack window,
// and whether any window is still ahead (so the prober knows when it can
// retire).
func (r *run) attackWindow(el time.Duration) (in, ahead bool) {
	for _, a := range r.spec.Attacks {
		if el < a.At.D()+a.For.D() {
			ahead = true
			if el >= a.At.D() {
				in = true
			}
		}
	}
	return in, ahead
}

// probeLoop dials the probe port — striped away from the workload port —
// while attack windows are open, recording handshake latency. It is the
// run's striping control: flood pressure on one stripe must not slow
// dials that take a different stripe's lock.
func (r *run) probeLoop() {
	ctx := r.clients[0].NewContext()
	for !r.stopped() {
		in, ahead := r.attackWindow(time.Since(r.start))
		if !in {
			if !ahead {
				return
			}
			select {
			case <-r.stop:
				return
			case <-time.After(time.Millisecond):
			}
			continue
		}
		t0 := time.Now()
		c, err := ctx.DialTimeout("10.0.0.1", probePort, opTimeout)
		lat := time.Since(t0)
		r.mu.Lock()
		if err != nil {
			r.probeFails++
		} else {
			r.probeLat = append(r.probeLat, lat)
		}
		r.mu.Unlock()
		if c != nil {
			c.Close()
		}
		select {
		case <-r.stop:
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (r *run) impairmentEvent(idx int, imp Impairment) schedEvent {
	ev := schedEvent{at: imp.At.D(), end: imp.At.D(), kind: imp.Kind}
	seed := r.spec.Seed + int64(idx) + 7919 // per-event derived seed
	switch imp.Kind {
	case ImpLoss:
		ev.apply = func() string {
			r.fab.SetLoss(imp.Rate)
			return fmt.Sprintf("loss=%.3f", imp.Rate)
		}
	case ImpBurstLoss:
		ev.apply = func() string {
			r.fab.SetBurstLoss(tas.GEConfig{
				PGoodToBad: imp.GE.PGoodToBad, PBadToGood: imp.GE.PBadToGood,
				LossGood: imp.GE.LossGood, LossBad: imp.GE.LossBad,
			}, seed)
			return fmt.Sprintf("ge(pgb=%.3f pbg=%.3f lb=%.2f) seed=%d",
				imp.GE.PGoodToBad, imp.GE.PBadToGood, imp.GE.LossBad, seed)
		}
	case ImpClearLoss:
		ev.apply = func() string {
			r.fab.SetLoss(0)
			r.fab.ClearBurstLoss()
			return "loss cleared"
		}
	case ImpPartition:
		ev.target = imp.A + "<->" + imp.B
		ev.apply = func() string {
			r.fab.Partition(hostAddr(imp.A), hostAddr(imp.B))
			return "partitioned"
		}
	case ImpHeal:
		ev.target = imp.A + "<->" + imp.B
		ev.apply = func() string {
			if imp.A == "" || imp.B == "" {
				r.fab.HealAll()
				return "healed all"
			}
			r.fab.Heal(hostAddr(imp.A), hostAddr(imp.B))
			return "healed"
		}
	case ImpLinkDown:
		ev.target = imp.Host
		ev.apply = func() string { r.fab.SetLinkDown(hostAddr(imp.Host), true); return "down" }
	case ImpLinkUp:
		ev.target = imp.Host
		ev.apply = func() string { r.fab.SetLinkDown(hostAddr(imp.Host), false); return "up" }
	case ImpDelay:
		ev.apply = func() string {
			r.linkMu.Lock()
			defer r.linkMu.Unlock()
			if r.linkCfg != nil {
				r.linkCfg.PropDelay = imp.Delay.D()
				r.fab.SetLink(*r.linkCfg)
			} else {
				r.fab.SetLatency(imp.Delay.D())
			}
			return fmt.Sprintf("delay=%v", imp.Delay.D())
		}
	case ImpRate:
		ev.apply = func() string {
			r.linkMu.Lock()
			defer r.linkMu.Unlock()
			r.linkCfg.RateBps = imp.Rate * 1e6
			r.fab.SetLink(*r.linkCfg)
			return fmt.Sprintf("rate=%.1fMbps", imp.Rate)
		}
	}
	return ev
}

// victimCore returns the active core owning the most flows (ties to the
// lowest index): the deterministic resolution of Core == -1.
func victimCore(eng *fastpath.Engine) int {
	counts := make(map[int]int)
	eng.Table.ForEach(func(f *flowstate.Flow) {
		counts[eng.CoreForFlow(f)]++
	})
	victim, n := 0, -1
	for c, k := range counts {
		if k > n || (k == n && c < victim) {
			victim, n = c, k
		}
	}
	return victim
}

func (r *run) faultEvent(f FaultEvent) schedEvent {
	target := f.Target
	if target == "" {
		target = "server"
	}
	ev := schedEvent{at: f.At.D(), end: f.At.D() + f.For.D(), kind: f.Kind, target: target}
	switch f.Kind {
	case FaultAppKill:
		ev.apply = func() string {
			var k int
			fmt.Sscanf(target, "client%d", &k)
			s := r.slots[k][f.App]
			s.mu.Lock()
			if s.ctx != nil {
				s.ctx.Kill()
			}
			s.mu.Unlock()
			return fmt.Sprintf("app %d killed", f.App)
		}
	case FaultAppStall:
		ev.apply = func() string {
			var k int
			fmt.Sscanf(target, "client%d", &k)
			s := r.slots[k][f.App]
			s.mu.Lock()
			if s.ctx != nil {
				s.ctx.Stall(f.For.D())
			}
			s.mu.Unlock()
			return fmt.Sprintf("app %d stalled %v", f.App, f.For.D())
		}
	case FaultSlowKill:
		ev.apply = func() string { r.service(target).KillSlowPath(); return "slow path killed" }
	case FaultSlowStall:
		ev.apply = func() string {
			r.service(target).StallSlowPath(f.For.D())
			return fmt.Sprintf("slow path stalled %v", f.For.D())
		}
	case FaultSlowPanic:
		ev.apply = func() string { r.service(target).InjectSlowPathPanic(); return "slow path panic injected" }
	case FaultSlowRestart:
		ev.apply = func() string {
			st := r.service(target).Restart()
			return fmt.Sprintf("warm restart: %d flows readopted, %d aborted", st.FlowsReconstructed, st.FlowsAborted)
		}
	case FaultCoreKill:
		ev.apply = func() string {
			svc := r.service(target)
			core := f.Core
			if core == -1 {
				core = victimCore(svc.Engine())
			}
			svc.KillCore(core)
			return fmt.Sprintf("core %d killed", core)
		}
	case FaultCoreStall:
		ev.apply = func() string {
			svc := r.service(target)
			core := f.Core
			if core == -1 {
				core = victimCore(svc.Engine())
			}
			svc.StallCore(core, f.For.D())
			return fmt.Sprintf("core %d stalled %v", core, f.For.D())
		}
	case FaultCorePanic:
		ev.apply = func() string {
			svc := r.service(target)
			core := f.Core
			if core == -1 {
				core = victimCore(svc.Engine())
			}
			svc.InjectCorePanic(core)
			return fmt.Sprintf("core %d panic injected", core)
		}
	case FaultCoreRevive:
		ev.apply = func() string {
			ok := r.service(target).ReviveCore(f.Core)
			return fmt.Sprintf("core %d revived (fresh=%v)", f.Core, ok)
		}
	}
	return ev
}

// playTimeline fires every scheduled event at its offset.
func (r *run) playTimeline(evs []schedEvent) {
	for _, ev := range evs {
		wait := time.Until(r.start.Add(ev.at))
		if wait > 0 {
			select {
			case <-r.stop:
				return
			case <-time.After(wait):
			}
		}
		if r.stopped() {
			return
		}
		detail := ev.apply()
		wall := time.Since(r.start)
		r.logf("  t=%7.1fms %-14s %-18s %s",
			float64(wall.Microseconds())/1000, ev.kind, ev.target, detail)
		r.mu.Lock()
		r.timeline = append(r.timeline, EventRecord{
			AtMS:   float64(ev.at.Microseconds()) / 1000,
			WallMS: float64(wall.Microseconds()) / 1000,
			Kind:   ev.kind,
			Target: ev.target,
			Detail: detail,
		})
		r.mu.Unlock()
	}
}

// --- assertions -------------------------------------------------------

func (r *run) evaluate(rep *Report, capped bool, recovery time.Duration) []AssertionResult {
	a := r.spec.Assert
	var out []AssertionResult
	add := func(name string, pass bool, format string, args ...any) {
		out = append(out, AssertionResult{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	if capped {
		add("within-duration", false, "run hit the %v duration cap", r.spec.Duration.D())
	} else {
		add("within-duration", true, "finished in %.0fms", rep.WallMS)
	}
	if a.AllComplete {
		w := rep.Workload
		add("all-complete", w.Completed == w.Expected && w.Failed == 0,
			"%d/%d ops completed (%d failed)", w.Completed, w.Expected, w.Failed)
	}
	if a.Intact {
		m := rep.Workload.Mismatches
		add("intact", m == 0, "%d content mismatches over %d completed ops (SHA-256 verified)",
			m, rep.Workload.Completed)
	}
	if a.MaxRecovery > 0 {
		add("recovery", recovery <= a.MaxRecovery.D(),
			"recovered in %v (bound %v)", recovery.Round(time.Millisecond), a.MaxRecovery.D())
	}
	if a.MinFlowsMigrated > 0 {
		got := rep.Server.FlowsMigrated
		add("flows-migrated", got >= uint64(a.MinFlowsMigrated),
			"%d flows migrated (want >= %d)", got, a.MinFlowsMigrated)
	}
	if a.MinCoreFailures > 0 {
		got := rep.Server.CoreFailures
		add("core-failures", got >= uint64(a.MinCoreFailures),
			"%d core failures declared (want >= %d)", got, a.MinCoreFailures)
	}
	if a.MinAppsReaped > 0 {
		var got uint64
		got += rep.Server.AppsReaped
		for _, c := range rep.Clients {
			got += c.AppsReaped
		}
		add("apps-reaped", got >= uint64(a.MinAppsReaped),
			"%d app contexts reaped (want >= %d)", got, a.MinAppsReaped)
	}
	if a.RequireDegraded {
		var outages uint64
		outages += rep.Server.SlowPathOutages
		for _, c := range rep.Clients {
			outages += c.SlowPathOutages
		}
		add("degraded-observed", outages > 0, "%d slow-path outages observed", outages)
	}
	if a.BoundServerAborts {
		add("server-aborts", rep.Server.Aborts <= uint64(a.MaxServerAborts),
			"%d server aborts (bound %d)", rep.Server.Aborts, a.MaxServerAborts)
	}
	sumPeerDead := func() (zw, ka uint64) {
		zw, ka = rep.Server.PeerDeadZeroWindow, rep.Server.PeerDeadKeepalive
		for _, c := range rep.Clients {
			zw += c.PeerDeadZeroWindow
			ka += c.PeerDeadKeepalive
		}
		return
	}
	if a.MinPersistProbes > 0 {
		got := rep.Server.PersistProbes
		for _, c := range rep.Clients {
			got += c.PersistProbes
		}
		add("persist-probes", got >= uint64(a.MinPersistProbes),
			"%d zero-window probes sent across services (want >= %d)", got, a.MinPersistProbes)
	}
	if a.MinPeerDead > 0 {
		zw, ka := sumPeerDead()
		add("peer-dead", zw+ka >= uint64(a.MinPeerDead),
			"%d peer-dead verdicts (%d zero-window, %d keepalive; want >= %d)",
			zw+ka, zw, ka, a.MinPeerDead)
	}
	if a.BoundPeerDead {
		zw, ka := sumPeerDead()
		add("peer-dead-bound", zw+ka <= uint64(a.MaxPeerDead),
			"%d peer-dead verdicts (%d zero-window, %d keepalive; bound %d)",
			zw+ka, zw, ka, a.MaxPeerDead)
	}
	if a.NoReaperFired {
		reaped, idle := rep.Server.AppsReaped, rep.Server.GovIdleReclaimed
		for _, c := range rep.Clients {
			reaped += c.AppsReaped
			idle += c.GovIdleReclaimed
		}
		add("liveness-not-reaper", reaped == 0 && idle == 0,
			"%d app contexts reaped, %d flows idle-reclaimed (dead peers must fall to liveness probes alone)",
			reaped, idle)
	}
	if a.MinCookiesValidated > 0 {
		got := rep.Server.SynCookiesValidated
		add("cookies-validated", got >= uint64(a.MinCookiesValidated),
			"%d connections reconstructed from SYN cookies (want >= %d; %d cookies sent, %d rejected)",
			got, a.MinCookiesValidated, rep.Server.SynCookiesSent, rep.Server.SynCookiesRejected)
	}
	if a.ProbeP99 > 0 {
		p := rep.Probe
		if p == nil || p.Dials == 0 {
			add("probe-p99", false, "prober made no successful dials during attack windows (%d failed)",
				r.probeFails)
		} else {
			bound := float64(a.ProbeP99.D().Microseconds()) / 1000
			add("probe-p99", p.P99MS <= bound && p.Fails == 0,
				"cross-stripe dial p99 %.2fms over %d dials, %d failed (bound %.2fms)",
				p.P99MS, p.Dials, p.Fails, bound)
		}
	}
	if a.RttP99Under > 0 {
		boundUS := float64(a.RttP99Under.D().Microseconds())
		if rep.TimeSeries == nil {
			add("rtt-p99", false, "no embedded time series (telemetry recorder disabled)")
		} else if n, ok := rep.TimeSeries.Max("tas_rtt_us_count", nil); !ok || n == 0 {
			// An empty histogram would satisfy any bound vacuously; a
			// scenario asserting on RTT must actually generate server-side
			// ACK traffic (the server has to transmit data).
			add("rtt-p99", false, "RTT histogram saw no samples (server transmitted too little data)")
		} else if maxUS, ok := rep.TimeSeries.Max("tas_rtt_us", map[string]string{"quantile": "0.99"}); !ok {
			add("rtt-p99", false, "time series has no tas_rtt_us{quantile=\"0.99\"} points")
		} else {
			add("rtt-p99", maxUS <= boundUS,
				"worst sampled p99 RTT %.0fµs over %d snapshots, %.0f RTT samples (bound %.0fµs)",
				maxUS, len(rep.TimeSeries.AtMS), n, boundUS)
		}
	}
	if len(a.DropCauses) > 0 {
		causes := make([]string, 0, len(a.DropCauses))
		for c := range a.DropCauses {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			got := dropByCause(rep.Server.ServiceStats, c)
			add("drops:"+c, got <= a.DropCauses[c], "%d drops (bound %d)", got, a.DropCauses[c])
		}
	}
	if a.MinPressureLevel > 0 {
		got := rep.Server.PeakPressureLevel
		add("pressure-level", got >= a.MinPressureLevel,
			"degradation ladder peaked at rung %d (want >= %d; %d flow denials, %d idle reclaimed)",
			got, a.MinPressureLevel, rep.Server.GovFlowDenied, rep.Server.GovIdleReclaimed)
	}
	if len(a.MaxPoolUsed) > 0 {
		// Pool drains are asynchronous — FIN sweeps, reaper passes, and
		// governor releases all run on control ticks — so give the stack
		// a settle window before calling an occupancy a leak. The
		// services are still live here (teardown happens after
		// evaluation), so polling observes the drain.
		pools := make([]string, 0, len(a.MaxPoolUsed))
		for p := range a.MaxPoolUsed {
			pools = append(pools, p)
		}
		sort.Strings(pools)
		used := rep.Server.PoolUsed
		deadline := time.Now().Add(poolSettleWait)
		for {
			ok := true
			for _, p := range pools {
				if used[p] > a.MaxPoolUsed[p] {
					ok = false
				}
			}
			if ok || time.Now().After(deadline) {
				break
			}
			time.Sleep(25 * time.Millisecond)
			used = r.srv.Stats().PoolUsed
		}
		for _, p := range pools {
			add("pool:"+p, used[p] <= a.MaxPoolUsed[p],
				"%d in use after settle (bound %d)", used[p], a.MaxPoolUsed[p])
		}
	}
	return out
}

// poolSettleWait bounds how long evaluate waits for governed pools to
// drain back under their asserted bounds after the workload completes.
const poolSettleWait = 5 * time.Second

func dropByCause(s tas.ServiceStats, cause string) uint64 {
	switch cause {
	case "rx_ring_full":
		return s.RxRingDrops
	case "rx_buf_full":
		return s.RxBufDrops
	case "bad_desc":
		return s.BadDescDrops
	case "syn_shed":
		return s.SynShed
	case "syn_shed_down":
		return s.SynShedDown
	case "excq_full":
		return s.ExcqDrops
	case "events_lost":
		return s.EventsLost
	case "ooo_dropped":
		return s.OooDropped
	case "core_stranded":
		return s.CoreStranded
	case "syn_backlog":
		return s.SynBacklogDrops
	case "accept_queue":
		return s.AcceptQueueDrops
	case "blind_ack":
		return s.BlindAckDrops
	case "syn_shed_pressure":
		return s.SynShedPressure
	}
	return 0
}

// probeSummary reduces the prober's latency samples.
func probeSummary(lat []time.Duration, fails int) *ProbeResult {
	p := &ProbeResult{Dials: len(lat), Fails: fails}
	if len(lat) == 0 {
		return p
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	pct := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	p.P50MS = ms(pct(0.50))
	p.P99MS = ms(pct(0.99))
	p.MaxMS = ms(sorted[len(sorted)-1])
	return p
}
