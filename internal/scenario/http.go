package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// API is the minimal HTTP surface over the scenario engine:
//
//	GET  /scenarios   list the registered library scenarios
//	POST /runs        start a run ({"name":"wan"} or {"spec":{...}},
//	                  optional "seed" override); returns the run id
//	GET  /runs        list runs and their states
//	GET  /runs/<id>   one run: state, and the full report when done
//
// Runs execute asynchronously; poll the run until state is "done".
type API struct {
	mu   sync.Mutex
	seq  int
	runs map[string]*apiRun
	// order preserves creation order for GET /runs.
	order []string
}

// apiRun is one tracked execution.
type apiRun struct {
	ID       string  `json:"id"`
	Scenario string  `json:"scenario"`
	State    string  `json:"state"` // "running" | "done" | "error"
	Error    string  `json:"error,omitempty"`
	Report   *Report `json:"report,omitempty"`
}

// NewAPI returns an empty run tracker.
func NewAPI() *API {
	return &API{runs: map[string]*apiRun{}}
}

// Handler returns the API's routes.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/scenarios", a.handleScenarios)
	mux.HandleFunc("/runs", a.handleRuns)
	mux.HandleFunc("/runs/", a.handleRun)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (a *API) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	type item struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var out []item
	for _, n := range Names() {
		spec, err := Lookup(n)
		if err != nil {
			continue
		}
		out = append(out, item{Name: n, Description: spec.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// launchRequest is the POST /runs body.
type launchRequest struct {
	Name string          `json:"name,omitempty"` // library scenario
	Spec json.RawMessage `json:"spec,omitempty"` // or an inline spec
	Seed *int64          `json:"seed,omitempty"` // optional seed override
}

func (a *API) handleRuns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		a.mu.Lock()
		out := make([]*apiRun, 0, len(a.order))
		for _, id := range a.order {
			run := *a.runs[id]
			run.Report = nil // list view stays small; fetch /runs/<id> for the report
			out = append(out, &run)
		}
		a.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var req launchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		var spec *Spec
		switch {
		case req.Name != "" && req.Spec != nil:
			http.Error(w, "give name or spec, not both", http.StatusBadRequest)
			return
		case req.Name != "":
			spec, err = Lookup(req.Name)
		case req.Spec != nil:
			spec, err = ParseSpec(req.Spec)
		default:
			http.Error(w, "need name or spec", http.StatusBadRequest)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Seed != nil {
			spec.Seed = *req.Seed
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": a.launch(spec)})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// launch starts an asynchronous run and returns its id.
func (a *API) launch(spec *Spec) string {
	a.mu.Lock()
	a.seq++
	id := fmt.Sprintf("run-%d", a.seq)
	run := &apiRun{ID: id, Scenario: spec.Name, State: "running"}
	a.runs[id] = run
	a.order = append(a.order, id)
	a.mu.Unlock()
	go func() {
		rep, err := Run(spec, RunOptions{Metrics: true})
		a.mu.Lock()
		defer a.mu.Unlock()
		if err != nil {
			run.State, run.Error = "error", err.Error()
			return
		}
		run.State, run.Report = "done", rep
	}()
	return id
}

func (a *API) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/runs/")
	a.mu.Lock()
	run, ok := a.runs[id]
	var cp apiRun
	if ok {
		cp = *run
	}
	a.mu.Unlock()
	if !ok {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, &cp)
}
