package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// The library: named, ready-to-run scenarios. Each entry builds a fresh
// Spec so runs cannot leak state into the registry.
var (
	libMu  sync.RWMutex
	libMap = map[string]func() *Spec{}
)

// Register adds a named scenario (panics on duplicates: the registry is
// assembled at init time).
func Register(name string, build func() *Spec) {
	libMu.Lock()
	defer libMu.Unlock()
	if _, dup := libMap[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration %q", name))
	}
	libMap[name] = build
}

// Lookup builds the named scenario, or ErrUnknownScenario.
func Lookup(name string) (*Spec, error) {
	libMu.RLock()
	build := libMap[name]
	libMu.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownScenario, name, Names())
	}
	return build(), nil
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	libMu.RLock()
	defer libMu.RUnlock()
	out := make([]string, 0, len(libMap))
	for n := range libMap {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("wan", wan)
	Register("flaky-rack", flakyRack)
	Register("incast-storm", incastStorm)
	Register("rolling-core-failure", rollingCoreFailure)
	Register("slowpath-outage-churn", slowpathOutageChurn)
	Register("app-crash-churn", appCrashChurn)
	Register("syn-flood", synFlood)
	Register("churn-storm", churnStorm)
	Register("memory-squeeze", memorySqueeze)
	Register("zero-window-stall", zeroWindowStall)
	Register("silent-peer", silentPeer)
}

// zeroWindowStall: the stream server wedges — stops reading — for a
// second after consuming each connection's first length header, so
// every sender fills the 16 KiB receive buffer and hits a zero window
// with most of its transfer still queued. The senders must ride the
// persist timer (probes at PersistRTO backoff, not retransmit-budget
// burn) until the server resumes and the window reopens; everything
// then completes SHA-256-intact with no flow aborted and no peer
// misclassified as dead.
func zeroWindowStall() *Spec {
	return New("zero-window-stall").
		Describe("The stream server stops reading for 1s after each connection's first "+
			"length header: 16 KiB receive buffers fill, senders wedge against a zero "+
			"window and probe on the persist timer until the window reopens. Every "+
			"transfer completes intact, nothing aborts, no peer-dead verdicts.").
		Seed(97).
		Duration(60*time.Second).
		Clients(2).
		Buffers(16<<10, 0).
		// Ten probes at 100ms-base exponential backoff give the stall
		// minutes of headroom over the 1s wedge: the scenario proves
		// patience, the never-reopen variant proves the budget.
		Persist(100*time.Millisecond, 10).
		Stream(2, 2, 256<<10).
		ServerStall(time.Second, false).
		AssertIntact().
		AssertAllComplete().
		AssertPersistProbes(1).
		AssertNoPeerDead().
		AssertServerAborts(0).
		AssertDropBound("bad_desc", 0).
		AssertPoolDrained("flows", 0).
		AssertPoolDrained("payload_bytes", 0).
		AssertPoolDrained("half_open", 0).
		AssertPoolDrained("timers", 0).
		AssertPoolDrained("accept", 0).
		AssertPoolDrained("time_wait", 0).
		MustBuild()
}

// silentPeer: the only client's link goes silently dark for two
// seconds mid-stream — no FIN, no RST, frames just stop. The server's
// established flows have nothing outstanding to retransmit (the
// receiver side of a bulk stream), so only keepalives can notice: idle
// flows are probed, the probes go unanswered, and the flows are
// aborted with a peer-dead verdict and fully reclaimed — without the
// app-liveness reaper or the governor's LRU idle-reclaim firing. When
// the link returns, the workers redial and finish every transfer
// intact.
func silentPeer() *Spec {
	return New("silent-peer").
		Describe("The client host is blackholed for 2s mid-stream: server-side flows go "+
			"idle with nothing to retransmit, keepalives probe and give the peer up "+
			"(peer-dead aborts, full reclamation, reaper and idle-reclaim silent), and "+
			"after the link heals the workers redial and complete everything intact.").
		Seed(103).
		Duration(60*time.Second).
		Clients(1).
		// 20 Mbit/s paces the 8 MiB workload across ~3.4s of wire time, so
		// the 2s blackhole point lands mid-transfer even when startup and
		// the handshakes are slowed several-fold by a loaded CI machine.
		Link(20, 256, 0, 0).
		Keepalive(300*time.Millisecond, 100*time.Millisecond, 3).
		Stream(2, 2, 2<<20).
		LinkDown(2000*time.Millisecond, "client0").
		LinkUp(4000*time.Millisecond, "client0").
		AssertIntact().
		AssertAllComplete().
		AssertPeerDead(1).
		AssertNoReaper().
		AssertDropBound("bad_desc", 0).
		AssertPoolDrained("flows", 0).
		AssertPoolDrained("payload_bytes", 0).
		AssertPoolDrained("half_open", 0).
		AssertPoolDrained("timers", 0).
		AssertPoolDrained("accept", 0).
		AssertPoolDrained("time_wait", 0).
		MustBuild()
}

// churnStorm: sustained connection churn against a flow-table budget
// sized below the offered load. The governor's degradation ladder
// engages (cookies, then SYN shedding while the table is saturated) and
// releases as transfers complete; denied dials surface as retryable
// backpressure, not failures. The run proves graceful degradation: every
// transfer eventually completes SHA-256-intact, nothing deadlocks, and
// every governed pool returns exactly to empty afterwards.
func churnStorm() *Spec {
	return New("churn-storm").
		Describe("32 workers churn reconnect-per-transfer streams through a 40-entry "+
			"flow budget: the pressure ladder oscillates between engaging (SYNs shed, "+
			"dials denied with backpressure) and releasing as flows close. All transfers "+
			"complete intact and every governed pool drains back to zero.").
		Seed(83).
		Duration(120*time.Second).
		Clients(4).
		// 32 concurrent workers against 40 flow slots: steady-state
		// occupancy (live + closing entries) sits around 80% of the
		// budget, inside the ladder's engage band, so pressure is
		// guaranteed without being a hard wall.
		Quotas(Topology{MaxFlows: 40, MaxHalfOpen: 64}).
		Stream(8, 40, 16<<10).
		Reconnect().
		AssertIntact().
		AssertAllComplete().
		AssertPressureLevel(1).
		AssertPoolDrained("flows", 0).
		AssertPoolDrained("payload_bytes", 0).
		AssertPoolDrained("half_open", 0).
		AssertPoolDrained("timers", 0).
		AssertPoolDrained("accept", 0).
		AssertDropBound("bad_desc", 0).
		MustBuild()
}

// memorySqueeze: a payload-byte budget that eight persistent bulk
// streams nearly fill (~89% occupancy), holding the ladder at the
// TX-clamp rung for the whole transfer phase: per-flow grants shrink to
// a quarter buffer so all flows keep moving instead of a few hogging
// the pool. Occupancy stays below the reclaim rung, so no established
// flow is ever aborted; transfers finish intact and the payload pool
// drains to zero when the flows close.
func memorySqueeze() *Spec {
	return New("memory-squeeze").
		Describe("Eight persistent streams with 64 KiB buffers fill ~89% of a 1.125 MiB "+
			"payload budget: the ladder climbs to the TX-clamp rung and stays there, "+
			"grants shrink, every transfer still completes intact, and the payload pool "+
			"returns to zero after the flows close.").
		Seed(89).
		Duration(120*time.Second).
		Clients(2).
		Buffers(64<<10, 64<<10).
		// 8 flows x 128 KiB of buffers = 1 MiB against a 1.125 MiB cap:
		// 88.9% occupancy lands in the clamp-tx band (>=85% with the
		// default 70/55 watermarks) but under reclaim's 92.5%.
		Quotas(Topology{MaxPayloadBytes: 1152 << 10}).
		Stream(4, 24, 192<<10).
		AssertIntact().
		AssertAllComplete().
		AssertPressureLevel(3).
		AssertPoolDrained("payload_bytes", 0).
		AssertPoolDrained("flows", 0).
		AssertPoolDrained("half_open", 0).
		AssertPoolDrained("timers", 0).
		AssertPoolDrained("accept", 0).
		AssertDropBound("bad_desc", 0).
		MustBuild()
}

// synFlood: a sustained spoofed-SYN flood against the workload port
// while legitimate clients transfer SHA-256-verified streams through it.
// SYN cookies engage under the flood (validated completions prove the
// stateless path carried real handshakes), a modest backlog keeps the
// half-open table bounded, and the cross-stripe prober shows dials on a
// second port — hashing to a different handshake-table stripe — staying
// fast throughout.
func synFlood() *Spec {
	return New("syn-flood").
		Describe("50K pps spoofed SYN flood on the workload port for 2.5s: SYN cookies "+
			"carry legitimate handshakes statelessly, transfers stay intact, and dials "+
			"on a second port (different handshake stripe) keep a bounded p99.").
		Seed(71).
		Duration(60*time.Second).
		Clients(2).
		Timers(Topology{ListenBacklog: 64}).
		// Per-transfer churn keeps dials hitting the flooded port the
		// whole run; 120 transfers per worker paces the workload past the
		// flood window so "legit goodput during the flood" is actually
		// during the flood.
		Stream(2, 120, 64<<10).
		Reconnect().
		SynFlood(200*time.Millisecond, 2*time.Second, 50000, 0).
		AssertIntact().
		AssertAllComplete().
		AssertCookiesValidated(10).
		// Plain runs measure a ~40ms cross-stripe p99; the bound leaves
		// headroom for the race detector's ~10-20× slowdown because CI
		// executes this scenario race-enabled.
		AssertProbeP99(time.Second).
		AssertDropBound("bad_desc", 0).
		AssertRecovery(30 * time.Second).
		MustBuild()
}

// wan: bulk transfers across a rate-limited, delayed, mildly lossy
// long-haul link. The link model (transmission + bounded queue +
// propagation separated) is what keeps this congestion-limited instead
// of cliff-prone.
func wan() *Spec {
	return New("wan").
		Describe("Bulk transfers over a 200 Mbit/s, 5 ms, 0.2%-loss long-haul link: "+
			"the netem-grade link model must keep degradation congestion-limited.").
		Seed(11).
		Duration(60*time.Second).
		Clients(2).
		Link(200, 256, 5*time.Millisecond, 64).
		Stream(2, 2, 128<<10).
		Loss(0, 0.002).
		AssertIntact().
		AssertAllComplete().
		AssertDropBound("bad_desc", 0).
		MustBuild()
}

// flakyRack: correlated burst loss then link flaps on one client, with
// connection churn riding through it.
func flakyRack() *Spec {
	return New("flaky-rack").
		Describe("Gilbert–Elliott burst loss for 1.5s, then two 50ms link flaps on client0, "+
			"under per-transfer connection churn; every byte still arrives intact.").
		Seed(23).
		Duration(60*time.Second).
		Clients(2).
		Stream(2, 4, 64<<10).
		Reconnect().
		BurstLoss(0, GESpec{PGoodToBad: 0.02, PBadToGood: 0.2, LossBad: 0.75}).
		ClearLoss(1500*time.Millisecond).
		Flap(1600*time.Millisecond, "client0", 2, 50*time.Millisecond, 100*time.Millisecond).
		AssertIntact().
		AssertAllComplete().
		AssertRecovery(30 * time.Second).
		MustBuild()
}

// incastStorm: many synchronized senders into one server behind a
// bottleneck link with a shallow ECN-marking queue — the classic incast
// pattern; DCTCP's CE response keeps it graceful.
func incastStorm() *Spec {
	return New("incast-storm").
		Describe("8 synchronized workers blast one server through a 100 Mbit/s bottleneck "+
			"with a shallow ECN queue: drop-tail pressure plus CE marks, no corruption.").
		Seed(37).
		Duration(60*time.Second).
		Clients(4).
		Cores(4, 2).
		Link(100, 64, 1*time.Millisecond, 16).
		Stream(2, 1, 256<<10).
		AssertIntact().
		AssertAllComplete().
		AssertDropBound("bad_desc", 0).
		MustBuild()
}

// rollingCoreFailure: two fast-path cores die in sequence mid-transfer;
// the core watchdog must migrate flows to survivors both times.
func rollingCoreFailure() *Spec {
	return New("rolling-core-failure").
		Describe("Two successive fast-path core crashes (busiest core each time) under "+
			"sustained transfers: flows migrate to survivors, content stays intact.").
		Seed(41).
		Duration(90*time.Second).
		Clients(2).
		Cores(4, 2).
		PinCores().
		// The 100 Mbit/s link paces the 16 MiB workload to ~1.5s+, so
		// flows are still live when each kill's detection window
		// (CoreTimeout 400ms) closes and migration has victims to move.
		Link(100, 256, 0, 64).
		Stream(2, 4, 1<<20).
		KillCore(250*time.Millisecond, "server", -1).
		KillCore(900*time.Millisecond, "server", -1).
		AssertIntact().
		AssertAllComplete().
		AssertCoreFailures(2).
		AssertFlowsMigrated(1).
		AssertRecovery(60 * time.Second).
		MustBuild()
}

// slowpathOutageChurn: the control plane dies and panics while an RPC
// workload churns connections; dials ride through degraded mode and the
// warm restarts.
func slowpathOutageChurn() *Spec {
	return New("slowpath-outage-churn").
		Describe("Slow-path crash and contained panic, each healed by a warm restart, "+
			"under RPC connection churn: established flows keep serving, dials recover.").
		Seed(53).
		Duration(60*time.Second).
		Clients(2).
		RPC(3, 120, 128, 10).
		KillSlowPath(300*time.Millisecond, "server").
		RestartSlowPath(900*time.Millisecond, "server").
		PanicSlowPath(1500*time.Millisecond, "server").
		RestartSlowPath(2100*time.Millisecond, "server").
		AssertIntact().
		AssertAllComplete().
		AssertDegraded().
		AssertRecovery(30 * time.Second).
		// The RPC servers transmit responses, so the server-side RTT
		// estimator accumulates sampled observations; the bound is far
		// above the µs-scale fabric RTT because CI executes this
		// scenario race-enabled (~10-20x slowdown) and the outage
		// windows delay ACK processing.
		AssertRttP99Under(2 * time.Second).
		MustBuild()
}

// appCrashChurn: workload app contexts crash and are reaped; workers
// rebuild their contexts and finish the workload.
func appCrashChurn() *Spec {
	return New("app-crash-churn").
		Describe("Two workload app contexts crash mid-run and are reaped by the slow "+
			"path; the workers rebuild their contexts and complete every transfer.").
		Seed(67).
		Duration(60*time.Second).
		Clients(2).
		// The 50 Mbit/s link paces the 6 MiB workload past ~1.2s, so both
		// kills' reap windows (AppTimeout 300ms) close while workers are
		// still transferring and the reaps are observable in the report.
		Link(50, 256, 0, 64).
		Stream(3, 8, 128<<10).
		Reconnect().
		KillApp(200*time.Millisecond, "client0", 0).
		KillApp(400*time.Millisecond, "client1", 1).
		AssertIntact().
		AssertAllComplete().
		AssertAppsReaped(2).
		AssertRecovery(30 * time.Second).
		MustBuild()
}
