package scenario

import (
	"errors"
	"testing"
	"time"
)

// TestParseSpecRejections is the table-driven validation gauntlet:
// malformed JSON, unknown kinds, out-of-range indices, and broken
// timelines must all come back as the right typed error before
// anything executes.
func TestParseSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		json string
		want error
	}{
		{
			name: "malformed json",
			json: `{"name": "x", "workload": {`,
			want: ErrBadSpec,
		},
		{
			name: "unknown top-level field",
			json: `{"name":"x","workload":{"kind":"rpc"},"frobnicate":1}`,
			want: ErrBadSpec,
		},
		{
			name: "missing name",
			json: `{"workload":{"kind":"rpc"}}`,
			want: ErrBadSpec,
		},
		{
			name: "unknown workload kind",
			json: `{"name":"x","workload":{"kind":"multicast"}}`,
			want: ErrUnknownKind,
		},
		{
			name: "unknown impairment kind",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "impairments":[{"at":"1s","kind":"gravity"}]}`,
			want: ErrUnknownKind,
		},
		{
			name: "unknown fault kind",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":"1s","kind":"cosmic-ray"}]}`,
			want: ErrUnknownKind,
		},
		{
			name: "unknown drop cause",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "assert":{"drop_causes":{"gremlins":0}}}`,
			want: ErrUnknownKind,
		},
		{
			name: "per-app quota over global pool",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "topology":{"max_flows":10,"app_max_flows":11}}`,
			want: ErrBadSpec,
		},
		{
			name: "inverted pressure watermarks",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "topology":{"pressure_engage_pct":60,"pressure_release_pct":70}}`,
			want: ErrBadSpec,
		},
		{
			name: "watermark over 100",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "topology":{"pressure_engage_pct":140,"pressure_release_pct":55}}`,
			want: ErrBadSpec,
		},
		{
			name: "negative pool cap",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "topology":{"max_payload_bytes":-1}}`,
			want: ErrBadSpec,
		},
		{
			name: "unknown governed pool",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "assert":{"max_pool_used":{"gremlins":0}}}`,
			want: ErrUnknownKind,
		},
		{
			name: "negative pool bound",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "assert":{"max_pool_used":{"flows":-1}}}`,
			want: ErrBadSpec,
		},
		{
			name: "pressure level out of range",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "assert":{"min_pressure_level":9}}`,
			want: ErrOutOfRange,
		},
		{
			name: "core index out of range",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "topology":{"server_cores":2},
			        "faults":[{"at":"1s","kind":"core-kill","core":5}]}`,
			want: ErrOutOfRange,
		},
		{
			name: "app index out of range",
			json: `{"name":"x","workload":{"kind":"rpc","conns":2},
			        "faults":[{"at":"1s","kind":"app-kill","target":"client0","app":2}]}`,
			want: ErrOutOfRange,
		},
		{
			name: "unknown fault target",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":"1s","kind":"slowpath-kill","target":"client7"}]}`,
			want: ErrOutOfRange,
		},
		{
			name: "unknown partition host",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "impairments":[{"at":"1s","kind":"partition","a":"server","b":"mars"}]}`,
			want: ErrOutOfRange,
		},
		{
			name: "impairments out of order",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "impairments":[{"at":"2s","kind":"loss","rate":0.1},
			                       {"at":"1s","kind":"clear-loss"}]}`,
			want: ErrTimeline,
		},
		{
			name: "faults out of order",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":"2s","kind":"slowpath-kill"},
			                  {"at":"1s","kind":"slowpath-restart"}]}`,
			want: ErrTimeline,
		},
		{
			name: "negative offset",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":-5,"kind":"slowpath-kill"}]}`,
			want: ErrTimeline,
		},
		{
			name: "overlapping stalls on one unit",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":"1s","kind":"slowpath-stall","for":"500ms"},
			                  {"at":"1200ms","kind":"slowpath-kill"}]}`,
			want: ErrTimeline,
		},
		{
			name: "loss probability out of range",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "impairments":[{"at":"1s","kind":"loss","rate":1.5}]}`,
			want: ErrBadSpec,
		},
		{
			name: "stall without duration",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":"1s","kind":"core-stall","core":0}]}`,
			want: ErrBadSpec,
		},
		{
			name: "kill with duration",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":"1s","kind":"core-kill","core":0,"for":"1s"}]}`,
			want: ErrBadSpec,
		},
		{
			name: "core-revive needs explicit index",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":"1s","kind":"core-revive","core":-1}]}`,
			want: ErrBadSpec,
		},
		{
			name: "app fault on server",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "faults":[{"at":"1s","kind":"app-kill","target":"server"}]}`,
			want: ErrBadSpec,
		},
		{
			name: "burst loss without parameters",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "impairments":[{"at":"1s","kind":"burst-loss"}]}`,
			want: ErrBadSpec,
		},
		{
			name: "rate impairment without link model",
			json: `{"name":"x","workload":{"kind":"rpc"},
			        "impairments":[{"at":"1s","kind":"rate","rate":50}]}`,
			want: ErrBadSpec,
		},
		{
			name: "link model without rate",
			json: `{"name":"x","workload":{"kind":"rpc"},"link":{"rate_mbps":0}}`,
			want: ErrBadSpec,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil {
				t.Fatalf("spec accepted, want %v", tc.want)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v (%T), want class %v", err, err, tc.want)
			}
		})
	}
}

// TestParseSpecValid: a well-formed spec parses, gets defaults, and
// round-trips through its own JSON rendering.
func TestParseSpecValid(t *testing.T) {
	src := `{
	  "name": "roundtrip",
	  "seed": 99,
	  "duration": "5s",
	  "topology": {"clients": 2, "server_cores": 4},
	  "link": {"rate_mbps": 100, "delay": "2ms"},
	  "impairments": [
	    {"at": "100ms", "kind": "loss", "rate": 0.05},
	    {"at": "1s", "kind": "clear-loss"},
	    {"at": "1s", "kind": "flap", "host": "client1", "count": 2, "down": "50ms", "up": "50ms"}
	  ],
	  "faults": [
	    {"at": "200ms", "kind": "core-kill", "core": -1},
	    {"at": "800ms", "kind": "slowpath-stall", "for": "300ms"}
	  ],
	  "workload": {"kind": "stream", "conns": 3},
	  "assert": {"intact": true, "all_complete": true, "max_recovery": "10s"}
	}`
	s, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload.TransferBytes != 128<<10 || s.Workload.Transfers != 1 {
		t.Fatalf("stream defaults not filled: %+v", s.Workload)
	}
	if s.Duration.D() != 5*time.Second {
		t.Fatalf("duration = %v", s.Duration.D())
	}
	if got := s.ExpectedOps(); got != 2*3*1 {
		t.Fatalf("ExpectedOps = %d, want 6", got)
	}
	// Round-trip: the canonical rendering must re-parse to an equivalent
	// spec (Duration marshals as a string).
	again, err := ParseSpec(s.JSON())
	if err != nil {
		t.Fatalf("re-parse of canonical JSON: %v", err)
	}
	if again.Assert.MaxRecovery.D() != 10*time.Second || len(again.Impairments) != 3 {
		t.Fatalf("round-trip lost data: %+v", again)
	}
}

// TestDurationForms: both human strings and raw nanoseconds unmarshal.
func TestDurationForms(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"150ms"`)); err != nil || d.D() != 150*time.Millisecond {
		t.Fatalf("string form: %v %v", d.D(), nil)
	}
	if err := d.UnmarshalJSON([]byte(`1000000`)); err != nil || d.D() != time.Millisecond {
		t.Fatalf("int form: %v", d.D())
	}
	if err := d.UnmarshalJSON([]byte(`"nonsense"`)); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// TestBuilderMatchesJSON: the builder and the JSON format are two
// front-ends for the same spec.
func TestBuilderMatchesJSON(t *testing.T) {
	built, err := New("b").
		Seed(3).
		Duration(2*time.Second).
		Clients(2).
		Stream(2, 3, 32<<10).
		Loss(100*time.Millisecond, 0.1).
		KillSlowPath(500*time.Millisecond, "server").
		AssertIntact().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(built.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if string(parsed.JSON()) != string(built.JSON()) {
		t.Fatalf("builder spec does not round-trip:\n%s\nvs\n%s", built.JSON(), parsed.JSON())
	}
}

// TestBuilderRejects: builder output goes through the same validation.
func TestBuilderRejects(t *testing.T) {
	_, err := New("bad").RPC(1, 10, 64, 0).KillCore(0, "server", 9).Build()
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}
