package scenario

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAPIScenarios: the library is listed with descriptions.
func TestAPIScenarios(t *testing.T) {
	srv := httptest.NewServer(NewAPI().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []struct{ Name, Description string }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) < 5 {
		t.Fatalf("listed %d scenarios, want >= 5", len(list))
	}
	for _, s := range list {
		if s.Name == "" || s.Description == "" {
			t.Fatalf("incomplete listing entry: %+v", s)
		}
	}
}

// TestAPIRunLifecycle: POST an inline spec, poll the run to completion,
// and fetch the report.
func TestAPIRunLifecycle(t *testing.T) {
	srv := httptest.NewServer(NewAPI().Handler())
	defer srv.Close()

	body := `{"spec": {
	  "name": "api-quick",
	  "seed": 3,
	  "duration": "30s",
	  "workload": {"kind": "rpc", "conns": 2, "calls": 10, "msg_bytes": 64},
	  "assert": {"intact": true, "all_complete": true}
	}}`
	resp, err := http.Post(srv.URL+"/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs: %d", resp.StatusCode)
	}
	var launched struct{ ID string }
	json.NewDecoder(resp.Body).Decode(&launched)
	resp.Body.Close()
	if launched.ID == "" {
		t.Fatal("no run id")
	}

	deadline := time.Now().Add(30 * time.Second)
	var run struct {
		State  string
		Error  string
		Report *Report
	}
	for time.Now().Before(deadline) {
		r, err := http.Get(srv.URL + "/runs/" + launched.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&run); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if run.State != "running" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if run.State != "done" {
		t.Fatalf("run state %q (err %q)", run.State, run.Error)
	}
	if run.Report == nil || !run.Report.Pass {
		t.Fatalf("report: %+v", run.Report)
	}
	if len(run.Report.Metrics) == 0 {
		t.Fatal("API runs should include telemetry metrics")
	}

	// The list view tracks the run without shipping the full report.
	r, err := http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID, Scenario, State string
		Report              *Report
	}
	json.NewDecoder(r.Body).Decode(&list)
	r.Body.Close()
	if len(list) != 1 || list[0].ID != launched.ID || list[0].State != "done" || list[0].Report != nil {
		t.Fatalf("list view: %+v", list)
	}
}

// TestAPIRejections: bad launches come back 4xx, unknown runs 404.
func TestAPIRejections(t *testing.T) {
	srv := httptest.NewServer(NewAPI().Handler())
	defer srv.Close()
	for _, body := range []string{
		`{"name": "no-such-scenario"}`,
		`{}`,
		`{"name": "wan", "spec": {"name":"x"}}`,
		`{"spec": {"name":"x","workload":{"kind":"warp"}}}`,
		`not json`,
	} {
		resp, err := http.Post(srv.URL+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/runs/run-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", resp.StatusCode)
	}
}
