package scenario

import (
	"errors"
	"testing"
)

// TestLibraryRegistry: at least the five shipped scenarios are
// registered, every one builds a valid spec, and lookups are typed.
func TestLibraryRegistry(t *testing.T) {
	want := []string{
		"app-crash-churn", "flaky-rack", "incast-storm",
		"rolling-core-failure", "slowpath-outage-churn", "wan",
		"zero-window-stall", "silent-peer",
	}
	names := Names()
	if len(names) < 5 {
		t.Fatalf("library has %d scenarios, want >= 5", len(names))
	}
	for _, w := range want {
		spec, err := Lookup(w)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", w, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("library scenario %q invalid: %v", w, err)
		}
		if spec.Description == "" {
			t.Fatalf("library scenario %q has no description", w)
		}
	}
	if _, err := Lookup("does-not-exist"); !errors.Is(err, ErrUnknownScenario) {
		t.Fatalf("unknown lookup: %v", err)
	}
	// Lookup builds a fresh spec each time: mutating one run's spec must
	// not poison the registry.
	a, _ := Lookup("wan")
	a.Seed = 999999
	b, _ := Lookup("wan")
	if b.Seed == 999999 {
		t.Fatal("registry leaked a mutated spec")
	}
}

// TestLibraryFlakyRack runs the burst-loss + link-flap scenario end to
// end: connection churn through correlated loss, all bytes intact.
func TestLibraryFlakyRack(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario")
	}
	spec, err := Lookup("flaky-rack")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("flaky-rack failed:\n%s", rep.Summary())
	}
}

// TestLibraryRollingCoreFailure runs the two-core-crash scenario end to
// end: both failures detected, flows migrated, content intact.
func TestLibraryRollingCoreFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario")
	}
	spec, err := Lookup("rolling-core-failure")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("rolling-core-failure failed:\n%s", rep.Summary())
	}
	if rep.Server.CoreFailures < 2 {
		t.Fatalf("core failures = %d, want >= 2", rep.Server.CoreFailures)
	}
}
