// Package scenario is the declarative chaos scenario engine: a JSON
// scenario format (with a Go builder API) describing topology, a
// time-stamped link-impairment schedule, a workload mix, a fault
// timeline reusing the app / slow-path / fast-path-core fault
// harnesses, and machine-checkable assertions. An executor runs a
// scenario against the live fabric deterministically from a seed and
// emits a structured JSON run report; a registry of named library
// scenarios and a minimal HTTP API make runs launchable and
// inspectable. It is the platform that replaces hand-coded chaos tests.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/resource"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("150ms") and unmarshals from either a string or nanoseconds.
type Duration time.Duration

// D converts for callers.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms" or a bare number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// Spec is one declarative chaos scenario.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Seed drives every random decision in the run: impairment loss
	// processes, workload payload contents, and backoff jitter. Two runs
	// with the same spec and seed produce the same fault/impairment
	// timeline and payload set.
	Seed int64 `json:"seed"`

	// Duration caps the whole run; a workload that has not completed by
	// then is declared incomplete (default 30s).
	Duration Duration `json:"duration,omitempty"`

	Topology    Topology     `json:"topology"`
	Link        *LinkSpec    `json:"link,omitempty"`
	Impairments []Impairment `json:"impairments,omitempty"`
	Faults      []FaultEvent `json:"faults,omitempty"`
	Attacks     []Attack     `json:"attacks,omitempty"`
	Workload    Workload     `json:"workload"`
	Assert      Assertions   `json:"assert"`
}

// Topology sizes the service mesh under test: one server plus N client
// services on an in-process fabric, with the failure-domain timers that
// chaos runs need to converge quickly.
type Topology struct {
	Clients     int `json:"clients,omitempty"`      // client services (default 1)
	ServerCores int `json:"server_cores,omitempty"` // server fast-path cores (default 2)
	ClientCores int `json:"client_cores,omitempty"` // client fast-path cores (default 2)

	// DisableCoreScaling pins every configured fast-path core active
	// (required for core-fault scenarios, so kills hit live cores).
	DisableCoreScaling bool `json:"disable_core_scaling,omitempty"`

	// Failure-domain timers (0 = scenario defaults, tuned for runs that
	// converge in seconds: HandshakeRTO 25ms, AppTimeout 300ms,
	// SlowPathTimeout 150ms, CoreTimeout 400ms).
	HandshakeRTO    Duration `json:"handshake_rto,omitempty"`
	MaxRetransmits  int      `json:"max_retransmits,omitempty"`
	AppTimeout      Duration `json:"app_timeout,omitempty"`
	SlowPathTimeout Duration `json:"slowpath_timeout,omitempty"`
	CoreTimeout     Duration `json:"core_timeout,omitempty"`
	ListenBacklog   int      `json:"listen_backlog,omitempty"`

	// Peer-liveness and close-lifecycle timers (0 = service defaults),
	// applied to the server and every client: the persist timer's probe
	// cadence and budget for zero-window stalls, TCP keepalives for
	// idle established flows, the FIN_WAIT_2 bound, and the TIME_WAIT
	// quarantine length.
	PersistRTO        Duration `json:"persist_rto,omitempty"`
	MaxPersistProbes  int      `json:"max_persist_probes,omitempty"`
	KeepaliveTime     Duration `json:"keepalive_time,omitempty"`
	KeepaliveInterval Duration `json:"keepalive_interval,omitempty"`
	KeepaliveProbes   int      `json:"keepalive_probes,omitempty"`
	FinWait2Timeout   Duration `json:"fin_wait2_timeout,omitempty"`
	TimeWait          Duration `json:"time_wait,omitempty"`

	// CongestionControl selects the slow-path policy ("" = dctcp).
	CongestionControl string `json:"congestion_control,omitempty"`

	// Adversarial-traffic hardening knobs (server side): SYN-cookie
	// mode ("" = engage automatically under pressure, "always", "off"),
	// the handshake-table stripe count (0 = default 16), and the
	// RFC 5961 challenge-ACK budget (0 = default 100/s).
	SynCookies         string `json:"syn_cookies,omitempty"`
	HandshakeStripes   int    `json:"handshake_stripes,omitempty"`
	ChallengeAckPerSec int    `json:"challenge_ack_per_sec,omitempty"`

	// Server per-connection payload buffer sizes (0 = the 256 KiB
	// service default). Memory-squeeze scenarios shrink these so a
	// small MaxPayloadBytes budget covers a meaningful flow count.
	RxBufBytes int `json:"rx_buf_bytes,omitempty"`
	TxBufBytes int `json:"tx_buf_bytes,omitempty"`

	// Resource-governor capacities and quotas (server side; 0 =
	// uncapped / none). Validation rejects inconsistent combinations —
	// a per-app quota above the global pool, inverted watermarks — the
	// same way the service itself would.
	MaxPayloadBytes    int64    `json:"max_payload_bytes,omitempty"`
	MaxFlows           int      `json:"max_flows,omitempty"`
	MaxHalfOpen        int      `json:"max_half_open,omitempty"`
	AppMaxFlows        int      `json:"app_max_flows,omitempty"`
	AppMaxPayloadBytes int64    `json:"app_max_payload_bytes,omitempty"`
	PressureEngagePct  int      `json:"pressure_engage_pct,omitempty"`
	PressureReleasePct int      `json:"pressure_release_pct,omitempty"`
	IdleReclaimAge     Duration `json:"idle_reclaim_age,omitempty"`
	ReclaimBatch       int      `json:"reclaim_batch,omitempty"`
}

// LinkSpec installs the fabric's netem-grade link model for the run:
// transmission (rate), bounded queueing, and propagation delay modeled
// separately, so impairment sweeps degrade congestion-limited instead
// of hitting receiver-limited cliffs.
type LinkSpec struct {
	RateMbps  float64  `json:"rate_mbps"`
	QueuePkts int      `json:"queue_pkts,omitempty"` // default 256
	Delay     Duration `json:"delay,omitempty"`      // propagation delay
	ECNPkts   int      `json:"ecn_pkts,omitempty"`   // CE-mark threshold (0 = off)
}

// Impairment kinds.
const (
	ImpLoss      = "loss"       // uniform loss at Rate probability
	ImpBurstLoss = "burst-loss" // Gilbert–Elliott burst loss (GE params)
	ImpClearLoss = "clear-loss" // remove uniform and burst loss
	ImpPartition = "partition"  // block the A<->B host pair
	ImpHeal      = "heal"       // heal A<->B (or everything if unset)
	ImpLinkDown  = "link-down"  // take Host's link down
	ImpLinkUp    = "link-up"    // bring Host's link back
	ImpFlap      = "flap"       // Count down/up cycles on Host (Down/Up periods)
	ImpDelay     = "delay"      // set propagation delay to Delay
	ImpRate      = "rate"       // set link rate to Rate Mbps (needs link model)
)

// GESpec parameterizes burst loss (see stats.GEConfig).
type GESpec struct {
	PGoodToBad float64 `json:"p_good_to_bad"`
	PBadToGood float64 `json:"p_bad_to_good"`
	LossGood   float64 `json:"loss_good"`
	LossBad    float64 `json:"loss_bad"`
}

// Impairment is one time-stamped link-schedule entry. Entries must be
// ordered by At.
type Impairment struct {
	At   Duration `json:"at"`
	Kind string   `json:"kind"`

	Rate  float64  `json:"rate,omitempty"`  // loss probability or Mbps (ImpRate)
	GE    *GESpec  `json:"ge,omitempty"`    // burst-loss parameters
	A     string   `json:"a,omitempty"`     // partition endpoint ("server", "client0", ...)
	B     string   `json:"b,omitempty"`     // partition endpoint
	Host  string   `json:"host,omitempty"`  // link-down/up/flap target
	Delay Duration `json:"delay,omitempty"` // ImpDelay value

	// Flap expansion (ImpFlap): Count down/up cycles, each Down long,
	// separated by Up of healthy link.
	Count int      `json:"count,omitempty"`
	Down  Duration `json:"down,omitempty"`
	Up    Duration `json:"up,omitempty"`
}

// Fault kinds: the three failure domains' harnesses.
const (
	FaultAppKill  = "app-kill"  // stop a workload context's heartbeat for good
	FaultAppStall = "app-stall" // suppress the heartbeat for For

	FaultSlowKill    = "slowpath-kill"    // crash the slow path
	FaultSlowStall   = "slowpath-stall"   // wedge the slow path for For
	FaultSlowPanic   = "slowpath-panic"   // contained panic in the control loop
	FaultSlowRestart = "slowpath-restart" // warm restart from shared state

	FaultCoreKill   = "core-kill"   // crash fast-path core Core (-1 = busiest)
	FaultCoreStall  = "core-stall"  // wedge core Core for For
	FaultCorePanic  = "core-panic"  // contained panic on core Core
	FaultCoreRevive = "core-revive" // relaunch a crashed core
)

// FaultEvent is one time-stamped fault-timeline entry. Entries must be
// ordered by At, and entries targeting the same unit (same target
// service, fault domain, and index) must not overlap in [At, At+For).
type FaultEvent struct {
	At     Duration `json:"at"`
	Kind   string   `json:"kind"`
	Target string   `json:"target,omitempty"` // "server" (default) or "clientK"
	App    int      `json:"app,omitempty"`    // workload worker index (app faults, client targets only)
	Core   int      `json:"core,omitempty"`   // core index (core faults; -1 = busiest at fire time)
	For    Duration `json:"for,omitempty"`    // stall duration
}

// Attack kinds.
const (
	AttackSynFlood = "syn-flood" // spoofed SYNs at Rate pps against Port
)

// Attack is one time-stamped adversarial-traffic window: a raw packet
// source on the fabric forges segments with spoofed source addresses
// (replies route nowhere, as for a real blind attacker). Entries must
// be ordered by At. While any attack window is open, the executor's
// control-port prober (see Assertions.ProbeP99) measures handshake
// latency on a port striped away from the attacked one.
type Attack struct {
	At   Duration `json:"at"`
	For  Duration `json:"for"`            // attack window length
	Kind string   `json:"kind"`           // "syn-flood"
	Rate int      `json:"rate,omitempty"` // packets/sec (default 50000)
	Port uint16   `json:"port,omitempty"` // target port (default: the workload port)
}

// Workload kinds.
const (
	WorkStream = "stream" // length-prefixed bulk transfers, SHA-256 verified end to end
	WorkRPC    = "rpc"    // fixed-size echo RPCs
)

// Workload describes the traffic mix every client service generates
// against the server.
type Workload struct {
	Kind  string `json:"kind"`            // "stream" or "rpc"
	Conns int    `json:"conns,omitempty"` // concurrent workers per client (default 1)

	// Stream parameters.
	TransferBytes int  `json:"transfer_bytes,omitempty"` // bytes per transfer (default 128 KiB)
	Transfers     int  `json:"transfers,omitempty"`      // transfers per worker (default 1)
	Reconnect     bool `json:"reconnect,omitempty"`      // new connection per transfer (churn)
	ChunkBytes    int  `json:"chunk_bytes,omitempty"`    // write granularity (default 16 KiB)

	// RPC parameters.
	MsgBytes     int `json:"msg_bytes,omitempty"`      // request/response size (default 128)
	Calls        int `json:"calls,omitempty"`          // total calls per worker (default 100)
	CallsPerConn int `json:"calls_per_conn,omitempty"` // reconnect after this many (default Calls: no churn)

	// Stream server misbehavior (zero-window scenarios): ServerStall
	// makes the stream server stop reading for this long after it has
	// consumed a connection's first length header, so the sender fills
	// the receive buffer and wedges against a zero window.
	// StallFirstConnOnly restricts the stall to the first connection
	// the server accepts, so a sender that gives the wedged peer up
	// lands its retry on a healthy handler.
	ServerStall        Duration `json:"server_stall,omitempty"`
	StallFirstConnOnly bool     `json:"stall_first_conn_only,omitempty"`
}

// Assertions are the machine-checkable postconditions of a run. Zero
// values disable a check, except Intact/AllComplete which must be opted
// into explicitly.
type Assertions struct {
	// Intact requires every completed transfer/call to be content-
	// verified (SHA-256 digests for streams, echo comparison for RPC).
	Intact bool `json:"intact,omitempty"`

	// AllComplete requires every scheduled transfer/call to finish
	// within the run duration.
	AllComplete bool `json:"all_complete,omitempty"`

	// MaxRecovery bounds the time from the end of the last scheduled
	// timeline event to workload completion.
	MaxRecovery Duration `json:"max_recovery,omitempty"`

	// MinFlowsMigrated / MinCoreFailures / MinAppsReaped assert the
	// fault machinery actually engaged.
	MinFlowsMigrated int `json:"min_flows_migrated,omitempty"`
	MinCoreFailures  int `json:"min_core_failures,omitempty"`
	MinAppsReaped    int `json:"min_apps_reaped,omitempty"`

	// RequireDegraded asserts the fast path observed at least one
	// slow-path outage (degraded mode engaged).
	RequireDegraded bool `json:"require_degraded,omitempty"`

	// MaxServerAborts bounds flows the server aborted on retry-budget
	// exhaustion (-1 = unbounded; 0 means "none allowed" only when
	// BoundServerAborts is set).
	MaxServerAborts   int  `json:"max_server_aborts,omitempty"`
	BoundServerAborts bool `json:"bound_server_aborts,omitempty"`

	// DropCauses bounds server drop counters by cause name (the
	// tas_drops_total causes, e.g. "bad_desc": 0).
	DropCauses map[string]uint64 `json:"drop_causes,omitempty"`

	// MinCookiesValidated requires the server to have reconstructed at
	// least n connections from SYN-cookie ACKs (proof the stateless
	// path, not the stateful one, carried handshakes during a flood).
	MinCookiesValidated int `json:"min_cookies_validated,omitempty"`

	// ProbeP99 enables the control-port prober and bounds its p99 dial
	// latency during attack windows: handshakes on a port striped away
	// from the attacked one must stay fast while the flood runs.
	ProbeP99 Duration `json:"probe_p99,omitempty"`

	// RttP99Under bounds the server's p99 smoothed RTT over the whole
	// run, evaluated against the report's embedded telemetry time
	// series (the max of the tas_rtt_us{quantile="0.99"} trajectory) —
	// latency over time across the fault timeline, not just end state.
	RttP99Under Duration `json:"rtt_p99_under,omitempty"`

	// MinPressureLevel requires the server's resource-governor
	// degradation ladder to have reached at least this rung during the
	// run (1 cookies, 2 shed-syn, 3 clamp-tx, 4 reclaim) — proof the
	// pressure machinery actually engaged.
	MinPressureLevel int `json:"min_pressure_level,omitempty"`

	// MinPersistProbes requires at least n zero-window (persist timer)
	// probes transmitted across all services — proof senders rode the
	// persist timer through receiver-limited stalls instead of burning
	// their retransmission budgets.
	MinPersistProbes int `json:"min_persist_probes,omitempty"`

	// MinPeerDead requires at least n flows across all services to have
	// been aborted with a peer-dead verdict (persist-probe or keepalive
	// budget exhaustion).
	MinPeerDead int `json:"min_peer_dead,omitempty"`

	// MaxPeerDead bounds peer-dead verdicts across all services (0 means
	// "none allowed" only when BoundPeerDead is set): a scenario where
	// every stall resolves must never misclassify a slow peer as dead.
	MaxPeerDead   int  `json:"max_peer_dead,omitempty"`
	BoundPeerDead bool `json:"bound_peer_dead,omitempty"`

	// NoReaperFired asserts silent peers were detected by the liveness
	// machinery itself: no app context reaped and no flow LRU
	// idle-reclaimed on any service during the run.
	NoReaperFired bool `json:"no_reaper_fired,omitempty"`

	// MaxPoolUsed bounds the server's governed-pool occupancy at the
	// end of the run, by pool name (payload_bytes, flows, half_open,
	// contexts, timers, accept, time_wait). The executor gives teardown effects a
	// settle window (FIN sweeps, idle reclamation run on control ticks)
	// before declaring a pool leaked; a bound of 0 asserts the pool
	// returns exactly to empty.
	MaxPoolUsed map[string]int64 `json:"max_pool_used,omitempty"`
}

// --- Typed validation errors -----------------------------------------

// Sentinel error classes; every validation failure wraps exactly one,
// so callers can errors.Is-classify rejections.
var (
	ErrBadSpec         = errors.New("scenario: invalid spec")
	ErrUnknownKind     = errors.New("scenario: unknown kind")
	ErrOutOfRange      = errors.New("scenario: index out of range")
	ErrTimeline        = errors.New("scenario: bad timeline")
	ErrUnknownScenario = errors.New("scenario: unknown scenario")
)

// SpecError is a validation failure pinned to a spec field.
type SpecError struct {
	Field string // dotted path, e.g. "faults[2].core"
	Err   error  // wraps one of the sentinel classes
	Msg   string
}

// Error renders "field: msg (class)".
func (e *SpecError) Error() string {
	return fmt.Sprintf("scenario: %s: %s", e.Field, e.Msg)
}

// Unwrap exposes the sentinel class for errors.Is.
func (e *SpecError) Unwrap() error { return e.Err }

func specErr(class error, field, format string, args ...any) error {
	return &SpecError{Field: field, Err: class, Msg: fmt.Sprintf(format, args...)}
}

// --- Parsing ----------------------------------------------------------

// ParseSpec decodes and validates a JSON scenario. Unknown fields are
// rejected (strict decoding), and every timeline/index error is a typed
// *SpecError — nothing executes before the spec is proven well-formed.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSON renders the spec canonically.
func (s *Spec) JSON() []byte {
	b, _ := json.MarshalIndent(s, "", "  ")
	return b
}

// fill applies defaults in place (called by Validate).
func (s *Spec) fill() {
	if s.Duration <= 0 {
		s.Duration = Duration(30 * time.Second)
	}
	if s.Topology.Clients <= 0 {
		s.Topology.Clients = 1
	}
	if s.Topology.ServerCores <= 0 {
		s.Topology.ServerCores = 2
	}
	if s.Topology.ClientCores <= 0 {
		s.Topology.ClientCores = 2
	}
	for i := range s.Attacks {
		if s.Attacks[i].Rate == 0 {
			s.Attacks[i].Rate = 50000
		}
	}
	w := &s.Workload
	if w.Conns <= 0 {
		w.Conns = 1
	}
	switch w.Kind {
	case WorkStream:
		if w.TransferBytes <= 0 {
			w.TransferBytes = 128 << 10
		}
		if w.Transfers <= 0 {
			w.Transfers = 1
		}
		if w.ChunkBytes <= 0 {
			w.ChunkBytes = 16 << 10
		}
	case WorkRPC:
		if w.MsgBytes <= 0 {
			w.MsgBytes = 128
		}
		if w.Calls <= 0 {
			w.Calls = 100
		}
		if w.CallsPerConn <= 0 || w.CallsPerConn > w.Calls {
			w.CallsPerConn = w.Calls
		}
	}
}

// hostNames returns the valid host-name vocabulary for this topology.
func (s *Spec) validHost(name string) bool {
	if name == "server" {
		return true
	}
	var k int
	if _, err := fmt.Sscanf(name, "client%d", &k); err != nil {
		return false
	}
	return fmt.Sprintf("client%d", k) == name && k >= 0 && k < s.Topology.Clients
}

// Validate fills defaults and checks the whole spec; the first problem
// found is returned as a typed *SpecError. A nil return guarantees the
// executor can run the scenario without re-checking shapes.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return specErr(ErrBadSpec, "name", "scenario needs a name")
	}
	if s.Workload.Kind != WorkStream && s.Workload.Kind != WorkRPC {
		return specErr(ErrUnknownKind, "workload.kind", "unknown workload kind %q (want %q or %q)",
			s.Workload.Kind, WorkStream, WorkRPC)
	}
	s.fill()

	if s.Link != nil && s.Link.RateMbps <= 0 {
		return specErr(ErrBadSpec, "link.rate_mbps", "link model needs a positive rate, got %v", s.Link.RateMbps)
	}

	switch s.Topology.SynCookies {
	case "", "always", "off":
	default:
		return specErr(ErrUnknownKind, "topology.syn_cookies",
			"unknown SYN-cookie mode %q (want \"\", \"always\", or \"off\")", s.Topology.SynCookies)
	}
	if err := s.validateQuotas(); err != nil {
		return err
	}
	if err := s.validateLiveness(); err != nil {
		return err
	}

	if err := s.validateImpairments(); err != nil {
		return err
	}
	if err := s.validateFaults(); err != nil {
		return err
	}
	if err := s.validateAttacks(); err != nil {
		return err
	}
	if err := s.validateAssertions(); err != nil {
		return err
	}
	return nil
}

func (s *Spec) validateAttacks() error {
	var last Duration = -1
	for i, a := range s.Attacks {
		field := func(sub string) string { return fmt.Sprintf("attacks[%d].%s", i, sub) }
		if a.Kind != AttackSynFlood {
			return specErr(ErrUnknownKind, field("kind"), "unknown attack kind %q", a.Kind)
		}
		if a.At < 0 {
			return specErr(ErrTimeline, field("at"), "negative offset %v", a.At.D())
		}
		if a.At < last {
			return specErr(ErrTimeline, field("at"),
				"out of order: %v after an entry at %v (sort the schedule by at)", a.At.D(), last.D())
		}
		last = a.At
		if a.For <= 0 {
			return specErr(ErrBadSpec, field("for"), "attack window needs a positive duration")
		}
		if a.Rate < 0 {
			return specErr(ErrBadSpec, field("rate"), "negative rate %d", a.Rate)
		}
	}
	return nil
}

func (s *Spec) validateImpairments() error {
	var last Duration = -1
	for i, imp := range s.Impairments {
		field := func(sub string) string { return fmt.Sprintf("impairments[%d].%s", i, sub) }
		if imp.At < 0 {
			return specErr(ErrTimeline, field("at"), "negative offset %v", imp.At.D())
		}
		if imp.At < last {
			return specErr(ErrTimeline, field("at"),
				"out of order: %v after an entry at %v (sort the schedule by at)", imp.At.D(), last.D())
		}
		last = imp.At
		switch imp.Kind {
		case ImpLoss:
			if imp.Rate < 0 || imp.Rate >= 1 {
				return specErr(ErrBadSpec, field("rate"), "loss probability %v outside [0,1)", imp.Rate)
			}
		case ImpBurstLoss:
			if imp.GE == nil {
				return specErr(ErrBadSpec, field("ge"), "burst-loss needs ge parameters")
			}
		case ImpClearLoss, ImpHeal:
			// no parameters
		case ImpPartition:
			if !s.validHost(imp.A) || !s.validHost(imp.B) {
				return specErr(ErrOutOfRange, field("a"),
					"partition endpoints %q/%q must name server or client0..client%d",
					imp.A, imp.B, s.Topology.Clients-1)
			}
		case ImpLinkDown, ImpLinkUp:
			if !s.validHost(imp.Host) {
				return specErr(ErrOutOfRange, field("host"), "unknown host %q", imp.Host)
			}
		case ImpFlap:
			if !s.validHost(imp.Host) {
				return specErr(ErrOutOfRange, field("host"), "unknown host %q", imp.Host)
			}
			if imp.Count <= 0 || imp.Down <= 0 || imp.Up < 0 {
				return specErr(ErrBadSpec, field("count"),
					"flap needs count>0, down>0, up>=0 (got count=%d down=%v up=%v)",
					imp.Count, imp.Down.D(), imp.Up.D())
			}
		case ImpDelay:
			if imp.Delay < 0 {
				return specErr(ErrBadSpec, field("delay"), "negative delay %v", imp.Delay.D())
			}
		case ImpRate:
			if s.Link == nil {
				return specErr(ErrBadSpec, field("kind"), "rate impairment needs the link model (spec.link)")
			}
			if imp.Rate <= 0 {
				return specErr(ErrBadSpec, field("rate"), "rate must be positive Mbps, got %v", imp.Rate)
			}
		default:
			return specErr(ErrUnknownKind, field("kind"), "unknown impairment kind %q", imp.Kind)
		}
	}
	return nil
}

// faultUnit identifies the unit a fault acts on, for overlap checking.
type faultUnit struct {
	target string
	domain string // "app", "slow", "core"
	index  int
}

func (s *Spec) validateFaults() error {
	var last Duration = -1
	busyUntil := make(map[faultUnit]Duration)
	for i, f := range s.Faults {
		field := func(sub string) string { return fmt.Sprintf("faults[%d].%s", i, sub) }
		if f.At < 0 {
			return specErr(ErrTimeline, field("at"), "negative offset %v", f.At.D())
		}
		if f.At < last {
			return specErr(ErrTimeline, field("at"),
				"out of order: %v after an entry at %v (sort the timeline by at)", f.At.D(), last.D())
		}
		last = f.At

		target := f.Target
		if target == "" {
			target = "server"
		}
		if !s.validHost(target) {
			return specErr(ErrOutOfRange, field("target"), "unknown target %q", target)
		}

		var unit faultUnit
		switch f.Kind {
		case FaultAppKill, FaultAppStall:
			if target == "server" {
				return specErr(ErrBadSpec, field("target"),
					"app faults target client workload contexts; server handler contexts are dynamic")
			}
			if f.App < 0 || f.App >= s.Workload.Conns {
				return specErr(ErrOutOfRange, field("app"),
					"app %d outside the client's %d workload workers", f.App, s.Workload.Conns)
			}
			unit = faultUnit{target, "app", f.App}
		case FaultSlowKill, FaultSlowStall, FaultSlowPanic, FaultSlowRestart:
			unit = faultUnit{target, "slow", 0}
		case FaultCoreKill, FaultCoreStall, FaultCorePanic, FaultCoreRevive:
			cores := s.Topology.ServerCores
			if target != "server" {
				cores = s.Topology.ClientCores
			}
			if f.Core != -1 && (f.Core < 0 || f.Core >= cores) {
				return specErr(ErrOutOfRange, field("core"),
					"core %d outside %s's %d fast-path cores (-1 = busiest)", f.Core, target, cores)
			}
			if f.Core == -1 && f.Kind == FaultCoreRevive {
				return specErr(ErrBadSpec, field("core"), "core-revive needs an explicit core index")
			}
			unit = faultUnit{target, "core", f.Core}
		default:
			return specErr(ErrUnknownKind, field("kind"), "unknown fault kind %q", f.Kind)
		}

		if f.For < 0 {
			return specErr(ErrBadSpec, field("for"), "negative duration %v", f.For.D())
		}
		stallKind := f.Kind == FaultAppStall || f.Kind == FaultSlowStall || f.Kind == FaultCoreStall
		if stallKind && f.For == 0 {
			return specErr(ErrBadSpec, field("for"), "%s needs a positive duration", f.Kind)
		}
		if !stallKind && f.For != 0 {
			return specErr(ErrBadSpec, field("for"), "%s takes no duration", f.Kind)
		}

		if until, ok := busyUntil[unit]; ok && f.At < until {
			return specErr(ErrTimeline, field("at"),
				"overlaps the previous fault on %s/%s[%d] (busy until %v)",
				unit.target, unit.domain, unit.index, until.D())
		}
		end := f.At + f.For
		if end == f.At {
			end++ // instantaneous events still occupy their instant
		}
		busyUntil[unit] = end
	}
	return nil
}

// validateQuotas rejects inconsistent resource-governor settings the
// same way the service constructor would, so a bad spec fails at parse
// time instead of mid-run.
func (s *Spec) validateQuotas() error {
	t := s.Topology
	lim := resource.Limits{
		PayloadBytes:    t.MaxPayloadBytes,
		Flows:           int64(t.MaxFlows),
		HalfOpen:        int64(t.MaxHalfOpen),
		AppFlows:        int64(t.AppMaxFlows),
		AppPayloadBytes: t.AppMaxPayloadBytes,
		EngagePct:       t.PressureEngagePct,
		ReleasePct:      t.PressureReleasePct,
	}
	if err := lim.Validate(); err != nil {
		return specErr(ErrBadSpec, "topology", "%v", err)
	}
	if t.RxBufBytes < 0 || t.TxBufBytes < 0 {
		return specErr(ErrBadSpec, "topology.rx_buf_bytes", "negative buffer size")
	}
	if t.IdleReclaimAge < 0 {
		return specErr(ErrBadSpec, "topology.idle_reclaim_age", "negative reclaim age %v", t.IdleReclaimAge.D())
	}
	if t.ReclaimBatch < 0 {
		return specErr(ErrBadSpec, "topology.reclaim_batch", "negative reclaim batch %d", t.ReclaimBatch)
	}
	return nil
}

// validateLiveness rejects nonsensical peer-liveness settings and
// misapplied stream-server stalls.
func (s *Spec) validateLiveness() error {
	t := s.Topology
	for _, f := range []struct {
		name string
		d    Duration
	}{
		{"persist_rto", t.PersistRTO},
		{"keepalive_time", t.KeepaliveTime},
		{"keepalive_interval", t.KeepaliveInterval},
		{"fin_wait2_timeout", t.FinWait2Timeout},
		{"time_wait", t.TimeWait},
	} {
		if f.d < 0 {
			return specErr(ErrBadSpec, "topology."+f.name, "negative duration %v", f.d.D())
		}
	}
	if t.MaxPersistProbes < 0 || t.KeepaliveProbes < 0 {
		return specErr(ErrBadSpec, "topology.max_persist_probes", "negative probe budget")
	}
	w := s.Workload
	if w.ServerStall < 0 {
		return specErr(ErrBadSpec, "workload.server_stall", "negative stall %v", w.ServerStall.D())
	}
	if w.ServerStall > 0 && w.Kind != WorkStream {
		return specErr(ErrBadSpec, "workload.server_stall", "server stalls apply to stream workloads only")
	}
	if w.StallFirstConnOnly && w.ServerStall == 0 {
		return specErr(ErrBadSpec, "workload.stall_first_conn_only", "needs a positive server_stall")
	}
	return nil
}

// knownDropCauses mirrors the tas_drops_total causes the report exposes.
var knownDropCauses = map[string]bool{
	"rx_ring_full": true, "rx_buf_full": true, "bad_desc": true,
	"syn_shed": true, "syn_shed_down": true, "excq_full": true,
	"events_lost": true, "ooo_dropped": true, "core_stranded": true,
	"syn_backlog": true, "accept_queue": true, "blind_ack": true,
	"syn_shed_pressure": true,
}

// knownPools mirrors the governed pool names ServiceStats exposes.
var knownPools = map[string]bool{
	"payload_bytes": true, "flows": true, "half_open": true,
	"contexts": true, "timers": true, "accept": true, "time_wait": true,
}

func (s *Spec) validateAssertions() error {
	a := &s.Assert
	causes := make([]string, 0, len(a.DropCauses))
	for c := range a.DropCauses {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		if !knownDropCauses[c] {
			return specErr(ErrUnknownKind, "assert.drop_causes", "unknown drop cause %q", c)
		}
	}
	pools := make([]string, 0, len(a.MaxPoolUsed))
	for p := range a.MaxPoolUsed {
		pools = append(pools, p)
	}
	sort.Strings(pools)
	for _, p := range pools {
		if !knownPools[p] {
			return specErr(ErrUnknownKind, "assert.max_pool_used", "unknown pool %q", p)
		}
		if a.MaxPoolUsed[p] < 0 {
			return specErr(ErrBadSpec, "assert.max_pool_used", "negative bound for pool %q", p)
		}
	}
	if a.MinPressureLevel < 0 || a.MinPressureLevel >= resource.NumLevels {
		return specErr(ErrOutOfRange, "assert.min_pressure_level",
			"pressure level %d outside [0,%d]", a.MinPressureLevel, resource.NumLevels-1)
	}
	if a.MaxRecovery < 0 {
		return specErr(ErrBadSpec, "assert.max_recovery", "negative bound %v", a.MaxRecovery.D())
	}
	if a.MinPersistProbes < 0 || a.MinPeerDead < 0 || a.MaxPeerDead < 0 {
		return specErr(ErrBadSpec, "assert.min_persist_probes", "negative peer-liveness bound")
	}
	if a.RttP99Under < 0 {
		return specErr(ErrBadSpec, "assert.rtt_p99_under", "negative bound %v", a.RttP99Under.D())
	}
	return nil
}

// ExpectedOps returns the total operations the workload schedules
// (transfers for streams, calls for RPC) across all clients.
func (s *Spec) ExpectedOps() int {
	w := s.Workload
	per := w.Transfers
	if w.Kind == WorkRPC {
		per = w.Calls
	}
	return s.Topology.Clients * w.Conns * per
}
