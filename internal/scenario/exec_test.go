package scenario

import (
	"strings"
	"testing"
	"time"
)

// quickSpec is a small scenario that exercises impairments, a fault,
// and both assertion families while converging in well under a second
// of workload.
func quickSpec(seed int64) *Spec {
	return New("quick").
		Seed(seed).
		Duration(30*time.Second).
		Clients(2).
		Stream(2, 2, 32<<10).
		Loss(0, 0.02).
		ClearLoss(300*time.Millisecond).
		StallSlowPath(100*time.Millisecond, "server", 250*time.Millisecond).
		AssertIntact().
		AssertAllComplete().
		AssertDropBound("bad_desc", 0).
		MustBuild()
}

// TestRunStream: a stream scenario completes with every assertion green
// and a coherent report.
func TestRunStream(t *testing.T) {
	rep, err := Run(quickSpec(5), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if rep.Workload.Completed != rep.Workload.Expected || rep.Workload.Expected != 8 {
		t.Fatalf("completed %d/%d", rep.Workload.Completed, rep.Workload.Expected)
	}
	if len(rep.Timeline) != 3 {
		t.Fatalf("timeline recorded %d events, want 3", len(rep.Timeline))
	}
	for _, op := range rep.Workload.Ops {
		if len(op.SHA) != 64 {
			t.Fatalf("op missing payload digest: %+v", op)
		}
	}
	if rep.Server.Established == 0 {
		t.Fatal("server snapshot empty")
	}
}

// TestRunRPC: the echo workload with connection churn completes.
func TestRunRPC(t *testing.T) {
	spec := New("rpc-quick").
		Seed(9).
		Duration(30*time.Second).
		RPC(2, 30, 128, 10).
		AssertIntact().
		AssertAllComplete().
		MustBuild()
	rep, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if rep.Workload.Completed != 2*30 {
		t.Fatalf("completed %d, want 60", rep.Workload.Completed)
	}
}

// TestRunDeterminism is the seed-determinism regression: running the
// same spec twice must produce byte-identical deterministic report
// projections — same scheduled timeline, same payload digests, same
// completion set, same verdicts.
func TestRunDeterminism(t *testing.T) {
	a, err := Run(quickSpec(42), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickSpec(42), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	da, db := a.Deterministic(), b.Deterministic()
	if string(da) != string(db) {
		t.Fatalf("same seed diverged:\nrun1: %s\nrun2: %s", da, db)
	}
	if a.DeterministicDigest() != b.DeterministicDigest() {
		t.Fatal("digests differ for identical projections")
	}
	// A different seed must actually change the reproducible content
	// (payload digests derive from it).
	c, err := Run(quickSpec(43), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.DeterministicDigest() == a.DeterministicDigest() {
		t.Fatal("different seeds produced identical projections (seed not wired through)")
	}
}

// TestRunRejectsInvalidSpec: execution refuses an unvalidated spec.
func TestRunRejectsInvalidSpec(t *testing.T) {
	bad := &Spec{Name: "bad", Workload: Workload{Kind: "nope"}}
	if _, err := Run(bad, RunOptions{}); err == nil {
		t.Fatal("invalid spec executed")
	}
}

// TestRunDurationCap: a workload that cannot finish inside the cap is
// cut off and reported as failed, not hung.
func TestRunDurationCap(t *testing.T) {
	spec := New("capped").
		Seed(1).
		Duration(400*time.Millisecond).
		Link(1, 16, 0, 0). // 1 Mbit/s: the 4 MiB workload cannot finish
		Stream(1, 1, 4<<20).
		AssertAllComplete().
		MustBuild()
	start := time.Now()
	rep, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 20*time.Second {
		t.Fatalf("capped run took %v", time.Since(start))
	}
	if rep.Pass {
		t.Fatal("impossible workload passed")
	}
	found := false
	for _, a := range rep.Assertions {
		if a.Name == "within-duration" && !a.Pass {
			found = true
		}
	}
	if !found {
		t.Fatalf("cap not surfaced in assertions:\n%s", rep.Summary())
	}
}

// TestRunReportSummary: the narration and summary render without
// placeholder junk.
func TestRunReportSummary(t *testing.T) {
	var log strings.Builder
	rep, err := Run(quickSpec(7), RunOptions{Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Summary(), "quick") || !strings.Contains(rep.Summary(), "PASS") {
		t.Fatalf("summary: %s", rep.Summary())
	}
	if !strings.Contains(log.String(), "slowpath-stall") {
		t.Fatalf("narration missing timeline events:\n%s", log.String())
	}
}
