// Scenario example: author a chaos scenario with the builder API, run
// it twice, and show that the run report is deterministic — the same
// seed reproduces the same delivery digests and verdicts. The scenario
// pushes an RPC workload through a slow-path crash plus a burst-loss
// window, the same machinery behind the library scenarios that
// `tasbench -scenario <name>` executes from JSON.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/scenario"
)

func main() {
	spec := scenario.New("builder-demo").
		Describe("RPC churn through a slow-path crash and a burst-loss window.").
		Seed(7).
		Duration(30*time.Second).
		Clients(2).
		RPC(2, 40, 128, 10).
		BurstLoss(0, scenario.GESpec{PGoodToBad: 0.02, PBadToGood: 0.2, LossBad: 0.5}).
		ClearLoss(400*time.Millisecond).
		KillSlowPath(150*time.Millisecond, "server").
		RestartSlowPath(600*time.Millisecond, "server").
		AssertIntact().
		AssertAllComplete().
		AssertDegraded().
		AssertRecovery(20 * time.Second).
		MustBuild()

	run := func() *scenario.Report {
		rep, err := scenario.Run(spec, scenario.RunOptions{Log: os.Stderr})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	first := run()
	fmt.Println(first.Summary())

	second := run()
	d1 := first.DeterministicDigest()
	d2 := second.DeterministicDigest()
	fmt.Printf("deterministic digest, run 1: %s\n", d1[:16])
	fmt.Printf("deterministic digest, run 2: %s\n", d2[:16])
	if d1 != d2 {
		log.Fatal("FAIL: same seed produced different deterministic reports")
	}
	fmt.Println("same seed, same digests: the run is reproducible")

	if !first.Pass || !second.Pass {
		os.Exit(1)
	}
}
