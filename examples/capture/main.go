// Capture example: record every packet of a live TAS exchange into a
// standard pcap file (Wireshark/tcpdump-readable), then summarize it
// with the same analyzer cmd/tastrace uses. Shows the handshake, data,
// acks with ECN/timestamps, and teardown exactly as they crossed the
// fabric.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	tas "repro"
)

func main() {
	out := "tas-capture.pcap"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	fab := tas.NewFabric()
	srv, err := fab.NewService("10.0.0.1", tas.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := fab.NewService("10.0.0.2", tas.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	stop, err := fab.CaptureTo(f)
	if err != nil {
		log.Fatal(err)
	}

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 8192)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()

	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		log.Fatal(err)
	}
	req := make([]byte, 1000)
	resp := make([]byte, 8192)
	for i := 0; i < 25; i++ {
		if _, err := c.Write(req); err != nil {
			log.Fatal(err)
		}
		if _, err := c.Read(resp); err != nil {
			log.Fatal(err)
		}
	}
	c.Close()
	time.Sleep(50 * time.Millisecond) // drain FIN/ACK into the capture
	if err := stop(); err != nil {
		log.Fatalf("capture truncated: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	st, _ := os.Stat(out)
	fmt.Printf("wrote %s (%d bytes)\n", out, st.Size())
	fmt.Println("analyze with: go run ./cmd/tastrace", out)
}
