// Low-level API example: the IX-like interface the paper calls "TAS LL"
// (§3.3, used by the fig8/table7 "TAS LL" series). Instead of blocking
// socket calls, the server thread polls its context's event queues
// directly, reads requests out of the per-flow receive buffers without
// copies, and assembles responses straight into the transmit buffers.
// This is the interface that saves the sockets layer's ~620 cycles per
// request (Table 1).
package main

import (
	"fmt"
	"log"
	"time"

	tas "repro"
	"repro/internal/fastpath"
)

func main() {
	fab := tas.NewFabric()
	srv, err := fab.NewService("10.0.0.1", tas.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := fab.NewService("10.0.0.2", tas.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Server: accept via sockets, then serve via the low-level path.
	sctx := srv.NewContext()
	ln, err := sctx.Listen(7000)
	if err != nil {
		log.Fatal(err)
	}
	ready := make(chan struct{})
	go func() {
		conn, err := ln.Accept(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		close(ready)
		// Low-level event loop: poll raw fast-path events; on data,
		// echo by moving bytes buffer-to-buffer with zero copies.
		fp := sctx.LowLevel()
		evs := make([]fastpath.Event, 64)
		scratch := make([]byte, 64<<10)
		for {
			n := fp.PollEvents(evs)
			if n == 0 {
				// Block on the context's wakeup (the eventfd analogue),
				// re-polling once after arming to avoid lost wakeups.
				ch := fp.Sleep()
				if n = fp.PollEvents(evs); n == 0 {
					<-ch
					fp.Awake()
					continue
				}
				fp.Awake()
			}
			for i := 0; i < n; i++ {
				switch evs[i].Kind {
				case fastpath.EvData:
					// Zero-copy read from the rx buffer...
					k := conn.ReadZeroCopy(len(scratch), func(a, b []byte) int {
						m := copy(scratch, a)
						m += copy(scratch[m:], b)
						return m
					})
					if k == 0 {
						continue
					}
					// ...zero-copy write into the tx buffer.
					msg := scratch[:k]
					conn.WriteZeroCopy(k, func(a, b []byte) int {
						m := copy(a, msg)
						m += copy(b, msg[m:])
						return m
					})
				case fastpath.EvClosed, fastpath.EvAborted:
					return
				}
			}
		}
	}()

	// Client: ordinary sockets side.
	cctx := cli.NewContext()
	conn, err := cctx.Dial("10.0.0.1", 7000)
	if err != nil {
		log.Fatal(err)
	}
	<-ready
	const rpcs = 10000
	req := make([]byte, 64)
	resp := make([]byte, 64)
	start := time.Now()
	for i := 0; i < rpcs; i++ {
		if _, err := conn.Write(req); err != nil {
			log.Fatal(err)
		}
		got := 0
		for got < len(resp) {
			n, err := conn.Read(resp[got:])
			if err != nil {
				log.Fatal(err)
			}
			got += n
		}
	}
	el := time.Since(start)
	fmt.Printf("low-level echo: %d x 64B RPCs in %v (%.0f rpc/s, %.1fus avg RTT)\n",
		rpcs, el.Round(time.Millisecond), float64(rpcs)/el.Seconds(),
		float64(el.Microseconds())/rpcs)
}
