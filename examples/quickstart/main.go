// Quickstart: bring up two TAS services on an in-process fabric, accept
// a connection on one, dial from the other, and exchange a message —
// the smallest end-to-end use of the public API. Everything here runs
// through the real fast path: SYN handshake via the slow path, payload
// through per-flow buffers and context queues.
package main

import (
	"fmt"
	"log"
	"time"

	tas "repro"
)

func main() {
	// The fabric is the in-process network (the NIC + switch).
	fab := tas.NewFabric()

	server, err := fab.NewService("10.0.0.1", tas.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	client, err := fab.NewService("10.0.0.2", tas.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Contexts are per-application-thread attachments (the paper's
	// context queues); use one per goroutine. Bind the listener before
	// dialing — as with real TCP, a SYN that arrives before Listen is
	// refused.
	sctx := server.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 128)
		n, err := conn.Read(buf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("server got: %q\n", buf[:n])
		if _, err := conn.Write([]byte("hello from the fast path")); err != nil {
			log.Fatal(err)
		}
	}()

	ctx := client.NewContext()
	conn, err := ctx.Dial("10.0.0.1", 8080)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping over TAS")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 128)
	n, err := conn.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client got: %q\n", buf[:n])
}
