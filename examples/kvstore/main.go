// KV store example: the paper's §5.3 workload on the live TAS stack.
// A server service hosts a sharded memcached-model store; three client
// contexts drive zipf-skewed 90/10 GET/SET traffic over TAS connections
// for a few seconds and report throughput and latency percentiles.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	tas "repro"
	"repro/internal/apps/kv"
)

func main() {
	fab := tas.NewFabric()
	server, err := fab.NewService("10.0.0.1", tas.Config{FastPathCores: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	client, err := fab.NewService("10.0.0.2", tas.Config{FastPathCores: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Server: preloaded store, accept loop, one serving goroutine per
	// connection.
	store := kv.NewStore(16)
	workload := kv.NewWorkload(rand.New(rand.NewSource(1)), 5000, 32, 64, 0.9, 0.9)
	workload.Preload(store)

	sctx := server.NewContext()
	ln, err := sctx.Listen(11211)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept(0)
			if err != nil {
				return
			}
			// Each connection gets its own context (contexts are
			// single-goroutine, like the paper's per-thread contexts).
			hctx := server.NewContext()
			c.Rebind(hctx)
			go kv.ServeConn(c, store)
		}
	}()

	// Clients: 3 contexts (threads), each with its own connection.
	const clients = 3
	const runFor = 3 * time.Second
	var wg sync.WaitGroup
	var mu sync.Mutex
	var allLats []time.Duration
	var totalOps int

	for i := 0; i < clients; i++ {
		seed := int64(i + 7)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := client.NewContext()
			conn, err := ctx.Dial("10.0.0.1", 11211)
			if err != nil {
				log.Printf("dial: %v", err)
				return
			}
			kvc := kv.NewClient(conn)
			wl := kv.NewWorkload(rand.New(rand.NewSource(seed)), 5000, 32, 64, 0.9, 0.9)
			deadline := time.Now().Add(runFor)
			var lats []time.Duration
			for time.Now().Before(deadline) {
				req := wl.Next()
				t0 := time.Now()
				var err error
				if req.Op == kv.OpGet {
					_, _, err = kvc.Get(req.Key)
				} else {
					err = kvc.Set(req.Key, req.Value)
				}
				if err != nil {
					log.Printf("op: %v", err)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			allLats = append(allLats, lats...)
			totalOps += len(lats)
			mu.Unlock()
		}()
	}
	wg.Wait()

	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	q := func(p float64) time.Duration {
		if len(allLats) == 0 {
			return 0
		}
		return allLats[int(p*float64(len(allLats)-1))]
	}
	fmt.Printf("KV over TAS: %d ops in %v (%.0f ops/s)\n", totalOps, runFor, float64(totalOps)/runFor.Seconds())
	fmt.Printf("latency p50=%v p90=%v p99=%v\n",
		q(0.5).Round(time.Microsecond), q(0.9).Round(time.Microsecond), q(0.99).Round(time.Microsecond))
	fmt.Printf("store now holds %d keys\n", store.Len())
}
