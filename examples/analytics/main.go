// Analytics example: a two-node FlexStorm pipeline (§5.4) over live TAS
// connections. Node A runs word-count executors and emits updated counts
// to node B over a TAS connection; node B aggregates. Compare the
// per-stage latency breakdown with and without mux batching — the
// difference TAS eliminates (Table 8).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	tas "repro"
	"repro/internal/apps/flexstorm"
)

var words = []string{"tas", "fast", "path", "slow", "queue", "flow", "rate", "core"}

func runPipeline(batch time.Duration) {
	fab := tas.NewFabric()
	hostA, err := fab.NewService("10.0.1.1", tas.Config{FastPathCores: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer hostA.Close()
	hostB, err := fab.NewService("10.0.1.2", tas.Config{FastPathCores: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer hostB.Close()

	// Node B: accepts the stream from A and counts final tuples.
	bctx := hostB.NewContext()
	ln, err := bctx.Listen(4000)
	if err != nil {
		log.Fatal(err)
	}
	nodeB := flexstorm.NewNode(flexstorm.NodeConfig{Executors: 2}, flexstorm.WordCount, nil)
	defer nodeB.Close()
	accepted := make(chan struct{})
	go func() {
		conn, err := ln.Accept(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		close(accepted)
		nodeB.Ingest(conn)
	}()

	// Node A: spout -> executors -> (batching) mux -> TAS connection.
	actx := hostA.NewContext()
	conn, err := actx.Dial("10.0.1.2", 4000)
	if err != nil {
		log.Fatal(err)
	}
	<-accepted
	nodeA := flexstorm.NewNode(flexstorm.NodeConfig{Executors: 2, BatchFlush: batch}, flexstorm.WordCount, conn)
	defer nodeA.Close()

	const tuples = 20000
	rng := rand.New(rand.NewSource(42))
	start := time.Now()
	for i := 0; i < tuples; i++ {
		nodeA.Inject(flexstorm.Tuple{
			ID: uint64(i), Key: words[rng.Intn(len(words))], Value: 1,
			Emitted: time.Now().UnixNano(),
		})
	}
	// Wait for node B to see everything.
	for nodeB.Stats.TuplesIn.Load() < tuples {
		if time.Since(start) > 30*time.Second {
			log.Fatalf("pipeline stalled: B saw %d/%d", nodeB.Stats.TuplesIn.Load(), tuples)
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	inQ, proc, outQ := nodeA.AvgLatencies()
	fmt.Printf("  batch=%-6v  %6.0f ktuples/s   node-A input %.1fus  process %.1fus  output %.2fms\n",
		batch, float64(tuples)/elapsed.Seconds()/1000,
		inQ/1e3, proc/1e3, outQ/1e6)
}

func main() {
	fmt.Println("FlexStorm over TAS, 20k tuples through a 2-node pipeline:")
	fmt.Println("with 10ms mux batching (the Linux deployment's setting):")
	runPipeline(10 * time.Millisecond)
	fmt.Println("without batching (TAS does not need it, §5.4):")
	runPipeline(0)
}
