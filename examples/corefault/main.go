// Command corefault demonstrates the data-plane failure domain: one of
// four fast-path cores on the server is killed mid-transfer, the slow
// path's core watchdog detects the frozen heartbeat, rewrites RSS
// steering around the corpse, migrates the dead core's flows to
// survivors (go-back-N from the last acknowledged byte), and — after
// the core is revived — folds it back into steering once clean
// heartbeats flow. The transfer completes SHA-256-intact throughout.
// Run with:
//
//	go run ./examples/corefault
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"strings"
	"sync/atomic"
	"time"

	tas "repro"
)

func main() {
	fab := tas.NewFabric()
	cfg := tas.Config{
		FastPathCores:      4,
		DisableCoreScaling: true, // pin 4 active cores for the demo
		ControlInterval:    10 * time.Millisecond,
		CoreTimeout:        600 * time.Millisecond, // fast detection, yet starvation-tolerant
		Telemetry:          tas.TelemetryConfig{Enabled: true},
	}
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	defer cli.Close()

	ln, err := srv.NewContext().Listen(9000)
	if err != nil {
		log.Fatal(err)
	}
	digest := make(chan [32]byte, 1)
	var rcvd atomic.Int64
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		buf := make([]byte, 32<<10)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				h.Write(buf[:n])
				rcvd.Add(int64(n))
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		digest <- sum
	}()

	conn, err := cli.NewContext().Dial("10.0.0.1", 9000)
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	half := len(payload) / 2
	if _, err := conn.Write(payload[:half]); err != nil {
		log.Fatal(err)
	}
	// Wait until the server has the flow established and mid-stream —
	// killing before the handshake ACK lands would fail a half-open
	// flow, which has no state to migrate.
	for rcvd.Load() < 32<<10 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("healthy: %d KiB streamed across 4 fast-path cores\n", half>>10)

	// Kill the server data-plane core that owns the connection — the
	// one whose receive counter moved during the healthy phase.
	victim := 0
	for i := 1; i < cfg.FastPathCores; i++ {
		if srv.Engine().Stats(i).RxPackets.Load() >
			srv.Engine().Stats(victim).RxPackets.Load() {
			victim = i
		}
	}
	fmt.Printf("killing server fast-path core %d (the flow's owner) mid-transfer...\n", victim)
	t0 := time.Now()
	srv.KillCore(victim)
	for !srv.CoreFailed(victim) {
		time.Sleep(time.Millisecond)
	}
	st := srv.Stats()
	fmt.Printf("watchdog verdict in %v: core marked failed, RSS rewritten, "+
		"%d flow(s) migrated, %d queued packet(s) requeued\n",
		time.Since(t0).Round(time.Millisecond), st.FlowsMigrated, st.CoreDrainRequeued)

	// The transfer keeps moving on the three survivors.
	if _, err := conn.Write(payload[half:]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded: remaining %d KiB streamed on %d surviving cores\n",
		(len(payload)-half)>>10, cfg.FastPathCores-st.CoresFailed)

	// Revive: the watchdog re-admits the core after clean heartbeats.
	if !srv.ReviveCore(victim) {
		log.Fatal("ReviveCore failed")
	}
	t0 = time.Now()
	for srv.CoreFailed(victim) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("revived: core re-admitted to steering in %v\n",
		time.Since(t0).Round(time.Millisecond))

	if err := conn.Close(); err != nil {
		log.Fatal(err)
	}
	want := sha256.Sum256(payload)
	got := <-digest
	if !bytes.Equal(want[:], got[:]) {
		log.Fatalf("digest mismatch: %x != %x", want, got)
	}
	fmt.Printf("transfer completed across the core failure, SHA-256 verified (%x...)\n", got[:6])

	st = srv.Stats()
	fmt.Printf("core-fault stats: failures=%d migrated=%d readmits=%d requeued=%d panics=%d stranded=%d\n",
		st.CoreFailures, st.FlowsMigrated, st.CoreReadmits,
		st.CoreDrainRequeued, st.CorePanics, st.CoreStranded)
	var b strings.Builder
	if err := srv.Metrics().WriteText(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Println("core metrics:")
	for _, line := range strings.Split(b.String(), "\n") {
		if (strings.HasPrefix(line, "tas_core_") || strings.HasPrefix(line, "tas_flows_migrated")) &&
			!strings.HasPrefix(line, "#") {
			fmt.Println("  " + line)
		}
	}
}
