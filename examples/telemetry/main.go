// Telemetry: run an echo workload with the observability subsystem
// enabled, then inspect it three ways — scrape the Prometheus /metrics
// endpoint over real HTTP, print the Table-1-style per-module cycle
// breakdown, and dump one flow's flight-recorder timeline.
//
// This is the observability counterpart of examples/quickstart: same
// two-service echo topology, but with Config.Telemetry.Enabled set so
// every layer (fast path, slow path, libtas) records into the shared
// telemetry hub.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	tas "repro"
	"repro/internal/cpumodel"
)

const rpcs = 200

func main() {
	fab := tas.NewFabric()

	// Telemetry is opt-in per service; with it off the hot paths carry
	// zero instrumentation. FlightRingSize bounds the per-flow event
	// ring (events beyond that overwrite the oldest).
	cfg := tas.Config{Telemetry: tas.TelemetryConfig{Enabled: true, FlightRingSize: 256}}
	server, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	client, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Expose the server's metrics on a real HTTP listener, exactly as
	// `tasd -metrics-addr` does. Port 0 lets the kernel pick.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, server.Telemetry().Handler())

	// Echo workload: the server echoes fixed-size messages until the
	// client hangs up; the client runs request/response RPCs.
	sctx := server.NewContext()
	lst, err := sctx.Listen(8080)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := lst.Accept(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 64)
		for {
			n, err := conn.ReadTimeout(buf, 5*time.Second)
			if err != nil {
				return // client closed; workload over
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				return
			}
		}
	}()

	cctx := client.NewContext()
	conn, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("telemetry echo payload, 64 bytes of app data for the ring.....")
	buf := make([]byte, 64)
	for i := 0; i < rpcs; i++ {
		if _, err := conn.Write(msg); err != nil {
			log.Fatal(err)
		}
		if _, err := conn.ReadTimeout(buf, 5*time.Second); err != nil {
			log.Fatal(err)
		}
	}
	conn.Close()
	<-done
	fmt.Printf("echo workload done: %d RPCs\n\n", rpcs)

	// 1. Scrape /metrics like Prometheus would and show a sample of the
	// exposition.
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Printf("GET /metrics -> %s; a few samples:\n", resp.Status)
	sc := bufio.NewScanner(resp.Body)
	shown := 0
	for sc.Scan() && shown < 8 {
		line := sc.Text()
		if strings.HasPrefix(line, "tas_") && !strings.Contains(line, " 0") {
			fmt.Println("  " + line)
			shown++
		}
	}
	fmt.Println()

	// 2. Per-module cycle accounting: where the stack spent its time,
	// normalized to cycles per packet as in the paper's Table 1.
	eng := server.Engine()
	var pkts uint64
	for i := 0; i < server.ActiveCores(); i++ {
		st := eng.Stats(i)
		pkts += st.RxPackets.Load() + st.TxPackets.Load()
	}
	fmt.Println("server cycle breakdown:")
	server.Telemetry().Cycles.WriteBreakdown(os.Stdout, cpumodel.DefaultCyclesPerNs, pkts)
	fmt.Println()

	// 3. The flight recorder kept a bounded event ring for the flow; it
	// was retired (not discarded) on close, so the timeline — handshake,
	// segments, FIN — is still dumpable post-mortem.
	rec := client.Telemetry().Recorder
	keys := append(rec.LiveKeys(), rec.RetiredKeys()...)
	if len(keys) == 0 {
		log.Fatal("no flight-recorded flows")
	}
	fmt.Println("client-side flight record of the echo flow:")
	if err := rec.WriteFlowText(os.Stdout, keys[len(keys)-1]); err != nil {
		log.Fatal(err)
	}
}
