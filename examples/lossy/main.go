// Lossy-network example: push a sized transfer through the live TAS
// stack while the fabric drops packets, demonstrating the fast path's
// loss recovery (one-interval out-of-order buffering + duplicate-ACK
// go-back-N, with the slow path's timeout restart as backstop, §3.1/5.2).
package main

import (
	"crypto/sha256"
	"fmt"
	"log"
	"time"

	tas "repro"
)

func main() {
	const total = 4 << 20 // 4 MiB
	for _, loss := range []float64{0, 0.01, 0.03} {
		fab := tas.NewFabric()
		fab.SetLoss(loss)
		a, err := fab.NewService("10.0.0.1", tas.Config{})
		if err != nil {
			log.Fatal(err)
		}
		b, err := fab.NewService("10.0.0.2", tas.Config{})
		if err != nil {
			log.Fatal(err)
		}

		payload := make([]byte, total)
		for i := range payload {
			payload[i] = byte(i * 2654435761)
		}
		wantSum := sha256.Sum256(payload)

		bctx := b.NewContext()
		ln, err := bctx.Listen(9000)
		if err != nil {
			log.Fatal(err)
		}
		type result struct {
			ok      bool
			elapsed time.Duration
		}
		done := make(chan result, 1)
		go func() {
			conn, err := ln.Accept(10 * time.Second)
			if err != nil {
				log.Fatal(err)
			}
			h := sha256.New()
			buf := make([]byte, 64<<10)
			got := 0
			start := time.Now()
			for got < total {
				n, err := conn.Read(buf)
				if err != nil {
					log.Fatalf("read after %d bytes: %v", got, err)
				}
				h.Write(buf[:n])
				got += n
			}
			var sum [32]byte
			copy(sum[:], h.Sum(nil))
			done <- result{ok: sum == wantSum, elapsed: time.Since(start)}
		}()

		actx := a.NewContext()
		conn, err := actx.Dial("10.0.0.2", 9000)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := conn.Write(payload); err != nil {
			log.Fatal(err)
		}
		r := <-done
		status := "INTACT"
		if !r.ok {
			status = "CORRUPTED"
		}
		fmt.Printf("loss=%4.1f%%  4 MiB in %-12v  %.1f MB/s  payload %s\n",
			loss*100, r.elapsed.Round(time.Millisecond),
			float64(total)/1e6/r.elapsed.Seconds(), status)
		a.Close()
		b.Close()
	}
}
