// Command appfault demonstrates TAS surviving an untrusted
// application: two apps share one client instance; app A corrupts its
// command queue and then crashes mid-transfer, and TAS detects the
// death, RSTs A's peer, and reclaims everything A held — while app B's
// SHA-256-verified transfer completes untouched. Run with:
//
//	go run ./examples/appfault
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"time"

	tas "repro"
)

func main() {
	fab := tas.NewFabric()
	cfg := tas.Config{
		AppTimeout: 200 * time.Millisecond, // fast crash detection for the demo
	}
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	defer cli.Close()

	// Server: one sink for doomed app A, one hashing echo for app B.
	lnA, err := srv.NewContext().Listen(9001)
	if err != nil {
		log.Fatal(err)
	}
	lnB, err := srv.NewContext().Listen(9002)
	if err != nil {
		log.Fatal(err)
	}
	peerErr := make(chan error, 1)
	go func() {
		c, err := lnA.Accept(5 * time.Second)
		if err != nil {
			peerErr <- err
			return
		}
		buf := make([]byte, 32<<10)
		for {
			if _, err := c.Read(buf); err != nil {
				peerErr <- err
				return
			}
		}
	}()
	digest := make(chan [32]byte, 1)
	go func() {
		c, err := lnB.Accept(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		buf := make([]byte, 32<<10)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				h.Write(buf[:n])
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		digest <- sum
	}()

	// Two applications share the client TAS instance.
	ctxA, ctxB := cli.NewContext(), cli.NewContext()
	connA, err := ctxA.Dial("10.0.0.1", 9001)
	if err != nil {
		log.Fatal(err)
	}
	connB, err := ctxB.Dial("10.0.0.1", 9002)
	if err != nil {
		log.Fatal(err)
	}

	// App A misbehaves first: garbage descriptors into its own queues.
	injected := ctxA.CorruptQueue(7, 32)
	time.Sleep(50 * time.Millisecond)
	fmt.Printf("app A injected %d corrupt descriptors -> %d dropped, service healthy\n",
		injected, cli.Stats().BadDescDrops)

	// A streams until it is killed mid-transfer.
	go func() {
		chunk := make([]byte, 4<<10)
		for {
			if _, err := connA.Write(chunk); err != nil {
				fmt.Printf("app A sender observed: %v (reset=%v appdead=%v)\n",
					err, tas.ErrReset(err), tas.ErrAppDead(err))
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	fmt.Println("killing app A mid-transfer...")
	ctxA.Kill()

	// App B's transfer spans the crash and must be unharmed.
	h := sha256.New()
	chunk := make([]byte, 8<<10)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for cli.Stats().AppsReaped == 0 {
		if _, err := connB.Write(chunk); err != nil {
			log.Fatalf("app B write: %v", err)
		}
		h.Write(chunk)
		time.Sleep(time.Millisecond)
	}
	st := cli.Stats()
	fmt.Printf("reaper fired: apps=%d flows=%d reaped; flows live=%d\n",
		st.AppsReaped, st.FlowsReaped, st.FlowsLive)
	if err := <-peerErr; tas.ErrReset(err) {
		fmt.Println("app A's peer got the best-effort RST: reset error")
	}
	if err := connB.Close(); err != nil {
		log.Fatalf("app B close: %v", err)
	}
	want := <-digest
	var local [32]byte
	copy(local[:], h.Sum(nil))
	if !bytes.Equal(want[:], local[:]) {
		log.Fatalf("app B digest mismatch: %x != %x", want, local)
	}
	fmt.Printf("app B transfer completed across the crash, SHA-256 verified (%x...)\n", want[:6])
}
