// Command chaos demonstrates TAS connection survivability under fault
// injection: a bulk transfer across a link subjected to Gilbert–Elliott
// burst loss and periodic link flaps, followed by a permanent partition
// that the sender detects and surfaces as a reset error. Run with:
//
//	go run ./examples/chaos
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	tas "repro"
)

func main() {
	fab := tas.NewFabric()
	cfg := tas.Config{
		HandshakeRTO:     20 * time.Millisecond,
		HandshakeRetries: 3,
		MaxRetransmits:   4,
	}
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	defer cli.Close()

	ln, err := srv.NewContext().Listen(8080)
	if err != nil {
		log.Fatal(err)
	}

	const total = 1 << 20
	payload := make([]byte, total)
	rand.New(rand.NewSource(1)).Read(payload)
	want := sha256.Sum256(payload)

	done := make(chan [32]byte, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		var got bytes.Buffer
		buf := make([]byte, 64<<10)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				got.Write(buf[:n])
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatalf("receiver: %v", err)
			}
		}
		done <- sha256.Sum256(got.Bytes())
	}()

	conn, err := cli.NewContext().Dial("10.0.0.1", 8080)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: transfer through burst loss and link flaps.
	fmt.Printf("phase 1: %d KiB through burst loss + link flaps\n", total>>10)
	fab.SetBurstLoss(tas.GEConfig{PGoodToBad: 0.01, PBadToGood: 0.3, LossBad: 0.6}, 42)
	start := time.Now()
	sent, chunk := 0, 32<<10
	for sent < total {
		end := sent + chunk
		if end > total {
			end = total
		}
		n, err := conn.Write(payload[sent:end])
		sent += n
		if err != nil {
			log.Fatalf("write at %d: %v", sent, err)
		}
		if sent%(total/4) == 0 && sent < total {
			fab.SetLinkDown("10.0.0.2", true)
			time.Sleep(15 * time.Millisecond)
			fab.SetLinkDown("10.0.0.2", false)
			fmt.Printf("  flapped link at %d KiB\n", sent>>10)
		}
	}
	fab.ClearBurstLoss()
	fab.HealAll()
	conn.Close()
	sum := <-done
	if sum != want {
		log.Fatal("byte stream corrupted")
	}
	fmt.Printf("  intact stream delivered in %v\n", time.Since(start).Round(time.Millisecond))

	// Phase 2: permanent partition mid-transfer -> bounded-time abort.
	fmt.Println("phase 2: partition mid-transfer -> reset error")
	ln2, err := srv.NewContext().Listen(8081)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if _, err := ln2.Accept(5 * time.Second); err != nil {
			log.Fatal(err)
		}
	}()
	conn2, err := cli.NewContext().Dial("10.0.0.1", 8081)
	if err != nil {
		log.Fatal(err)
	}
	if err := fab.Partition("10.0.0.1", "10.0.0.2"); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	buf := make([]byte, 64<<10)
	for {
		if _, err := conn2.Write(buf); err != nil {
			if !tas.ErrReset(err) {
				log.Fatalf("unexpected error: %v", err)
			}
			fmt.Printf("  write failed with reset after %v (retry budget exhausted)\n",
				time.Since(start).Round(time.Millisecond))
			break
		}
	}
}
