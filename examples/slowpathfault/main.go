// Command slowpathfault demonstrates the control-plane failure domain:
// the slow path is killed mid-transfer, the fast path degrades
// gracefully (established flows keep moving, new connections fail
// fast), and a warm restart reconstructs control state from shared
// memory — the transfer completes SHA-256-intact. Run with:
//
//	go run ./examples/slowpathfault
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	tas "repro"
)

func main() {
	fab := tas.NewFabric()
	cfg := tas.Config{
		ControlInterval: 50 * time.Millisecond,
		SlowPathTimeout: 200 * time.Millisecond, // fast outage detection for the demo
		Telemetry:       tas.TelemetryConfig{Enabled: true},
	}
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	defer cli.Close()

	ln, err := srv.NewContext().Listen(9000)
	if err != nil {
		log.Fatal(err)
	}
	digest := make(chan [32]byte, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		buf := make([]byte, 32<<10)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				h.Write(buf[:n])
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		digest <- sum
	}()

	conn, err := cli.NewContext().Dial("10.0.0.1", 9000)
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	half := len(payload) / 2
	if _, err := conn.Write(payload[:half]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy: %d KiB streamed\n", half>>10)

	// The control plane dies mid-transfer.
	fmt.Println("killing the client slow path mid-transfer...")
	cli.KillSlowPath()
	for !cli.Degraded() {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("fast path detected the outage: degraded mode")

	// New connections fail fast with a typed error...
	t0 := time.Now()
	_, err = cli.NewContext().Dial("10.0.0.1", 9000)
	fmt.Printf("degraded Dial failed in %v: %v (ErrSlowPathDown=%v)\n",
		time.Since(t0).Round(time.Millisecond), err, tas.ErrSlowPathDown(err))

	// ...while the established flow keeps moving through the fast path.
	if _, err := conn.Write(payload[half:]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded: remaining %d KiB streamed with no control plane\n",
		(len(payload)-half)>>10)

	// Warm restart: a fresh slow path reconstructs its state from the
	// live flow table, payload rings, and listener registry.
	rep := cli.Restart()
	for cli.Degraded() {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("warm restart: %d flow(s) reconstructed, %d aborted, %d listener(s) rebuilt\n",
		rep.FlowsReconstructed, rep.FlowsAborted, rep.ListenersRebuilt)

	if err := conn.Close(); err != nil {
		log.Fatal(err)
	}
	want := sha256.Sum256(payload)
	got := <-digest
	if !bytes.Equal(want[:], got[:]) {
		log.Fatalf("digest mismatch: %x != %x", want, got)
	}
	fmt.Printf("transfer completed across the crash, SHA-256 verified (%x...)\n", got[:6])

	st := cli.Stats()
	fmt.Printf("recovery stats: outages=%d restarts=%d reconstructed=%d aborts=%d\n",
		st.SlowPathOutages, cli.Restarts(), st.FlowsReconstructed, st.RecoveryAborts)
	var b strings.Builder
	if err := cli.Metrics().WriteText(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Println("slow-path metrics:")
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "tas_slowpath_") && !strings.Contains(line, "_bucket") {
			fmt.Println("  " + line)
		}
	}
}
