package tas

import (
	"bytes"
	"crypto/sha256"
	"io"
	"math/rand"
	"testing"
	"time"
)

// chaosCfg uses aggressive failure timers so fault detection is fast
// enough for tests.
func chaosCfg() Config {
	return Config{
		HandshakeRTO:     20 * time.Millisecond,
		HandshakeRetries: 3,
		MaxRetransmits:   4,
	}
}

// TestChaosPartitionDuringHandshake: a Dial across a partitioned link
// must return a timeout error in bounded time — not block forever.
func TestChaosPartitionDuringHandshake(t *testing.T) {
	fab, srv, cli := newPair(t, chaosCfg())
	sctx := srv.NewContext()
	if _, err := sctx.Listen(8080); err != nil {
		t.Fatal(err)
	}
	if err := fab.Partition("10.0.0.1", "10.0.0.2"); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err := cli.NewContext().DialTimeout("10.0.0.1", 8080, 3*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Dial succeeded across a partition")
	}
	if !ErrTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
	// The handshake retry budget (20+40+80+160ms) decides well before
	// the caller's 3s deadline.
	if elapsed > 2*time.Second {
		t.Fatalf("Dial took %v, want bounded by the retry budget", elapsed)
	}

	// After healing, a fresh Dial succeeds.
	fab.HealAll()
	c, err := cli.NewContext().Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatalf("Dial after heal: %v", err)
	}
	c.Close()
}

// TestChaosTransferAcrossFlappingLossyLink: a bulk transfer across a
// link that flaps down/up while Gilbert–Elliott burst loss corrupts the
// schedule must still deliver an intact byte stream (retransmission +
// out-of-order handling end to end).
func TestChaosTransferAcrossFlappingLossyLink(t *testing.T) {
	fab, srv, cli := newPair(t, chaosCfg())
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}

	const total = 512 << 10
	payload := make([]byte, total)
	rand.New(rand.NewSource(7)).Read(payload)
	wantSum := sha256.Sum256(payload)

	recvDone := make(chan [32]byte, 1)
	recvErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept(10 * time.Second)
		if err != nil {
			recvErr <- err
			return
		}
		var got bytes.Buffer
		buf := make([]byte, 32<<10)
		for got.Len() < total {
			n, err := c.ReadTimeout(buf, 20*time.Second)
			if n > 0 {
				got.Write(buf[:n])
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				recvErr <- err
				return
			}
		}
		if got.Len() != total {
			recvErr <- io.ErrUnexpectedEOF
			return
		}
		recvDone <- sha256.Sum256(got.Bytes())
	}()

	c, err := cli.NewContext().Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos: burst loss for the whole transfer, plus synchronous link
	// flaps interleaved with the writes so outages provably overlap
	// in-flight data.
	fab.SetBurstLoss(GEConfig{PGoodToBad: 0.01, PBadToGood: 0.3, LossGood: 0, LossBad: 0.6}, 42)

	const chunk = 16 << 10
	nChunks := total / chunk
	sent, chunks := 0, 0
	for sent < total {
		n, err := c.WriteTimeout(payload[sent:min(sent+chunk, total)], 30*time.Second)
		sent += n
		if err != nil {
			t.Fatalf("Write at %d/%d: %v", sent, total, err)
		}
		chunks++
		// Flap the link at the quarter points: data already buffered
		// (and acks for it) are lost and must be retransmitted.
		if chunks%(nChunks/4) == 0 && sent < total {
			fab.SetLinkDown("10.0.0.2", true)
			time.Sleep(15 * time.Millisecond)
			fab.SetLinkDown("10.0.0.2", false)
		}
	}
	// Lift the chaos so the tail retransmissions converge promptly.
	fab.ClearBurstLoss()
	fab.HealAll()
	c.Close()

	select {
	case sum := <-recvDone:
		if sum != wantSum {
			t.Fatal("byte stream corrupted in transit")
		}
	case err := <-recvErr:
		t.Fatalf("receiver: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("transfer did not complete")
	}
}

// TestChaosPeerDeathAbortsTransfer: when the peer becomes permanently
// unreachable mid-transfer, the sender's retry budget must expire and
// Write must return a reset error — never block forever.
func TestChaosPeerDeathAbortsTransfer(t *testing.T) {
	fab, srv, cli := newPair(t, chaosCfg())
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err == nil {
			accepted <- c
		}
	}()

	c, err := cli.NewContext().Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	<-accepted

	// Prove liveness, then kill the path permanently.
	if _, err := c.Write([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := fab.Partition("10.0.0.1", "10.0.0.2"); err != nil {
		t.Fatal(err)
	}

	// Keep writing; once the transmit buffer fills, Write blocks until
	// the abort fires — it must surface ErrReset in bounded time.
	deadline := time.Now().Add(20 * time.Second)
	chunk := make([]byte, 64<<10)
	for {
		_, err := c.WriteTimeout(chunk, 5*time.Second)
		if err != nil {
			if !ErrReset(err) {
				t.Fatalf("err = %v, want reset", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Write never surfaced the abort")
		}
	}
	if !c.Aborted() {
		t.Fatal("connection not marked aborted")
	}
	// Reads on the dead connection fail fast too.
	if _, err := c.Read(make([]byte, 16)); !ErrReset(err) {
		t.Fatalf("Read err = %v, want reset", err)
	}
}

// TestChaosBurstLossDuringClose: heavy burst loss while both sides
// close must not strand either endpoint — FIN retransmission (or, in
// the worst case, the abort budget) converges and all data sent before
// the close is delivered intact.
func TestChaosBurstLossDuringClose(t *testing.T) {
	fab, srv, cli := newPair(t, chaosCfg())
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}

	msg := make([]byte, 8<<10)
	rand.New(rand.NewSource(9)).Read(msg)

	srvDone := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			srvDone <- err
			return
		}
		var got bytes.Buffer
		buf := make([]byte, 4096)
		for {
			n, err := c.ReadTimeout(buf, 20*time.Second)
			if n > 0 {
				got.Write(buf[:n])
			}
			if err != nil {
				if err == io.EOF && bytes.Equal(got.Bytes(), msg) {
					srvDone <- nil
				} else {
					srvDone <- err
				}
				c.Close()
				return
			}
		}
	}()

	c, err := cli.NewContext().Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	// Give the in-flight data a moment to drain, then make the link
	// bursty-lossy right as the FIN exchange starts.
	time.Sleep(50 * time.Millisecond)
	fab.SetBurstLoss(GEConfig{PGoodToBad: 0.05, PBadToGood: 0.25, LossGood: 0.05, LossBad: 0.8}, 1234)
	c.Close()
	time.Sleep(200 * time.Millisecond)
	fab.ClearBurstLoss()

	select {
	case err := <-srvDone:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("close never converged under burst loss")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
