package tas

import (
	"bytes"
	"os"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/trace"
)

// TestHandshakeOnTheWire taps the live fabric, performs a connection +
// one RPC, and verifies the TCP conversation as it appears on the wire:
// SYN, SYN|ACK, handshake ACK, data with timestamps and ECT marking,
// acks, then FIN/ACK teardown. This is the protocol-conformance test —
// the same bytes a tcpdump of a real TAS deployment would show.
func TestHandshakeOnTheWire(t *testing.T) {
	fab, srv, cli := newPair(t, Config{})
	var rec trace.Recorder
	fab.f.Tap = rec.Tap

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8085)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if err != nil {
			return
		}
		c.Write(buf[:n])
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8085)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("wire-check")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	<-done
	c.Close()
	time.Sleep(50 * time.Millisecond) // let FIN/ACK drain

	recs := rec.Records()
	if len(recs) < 6 {
		t.Fatalf("captured only %d packets", len(recs))
	}
	var sawSyn, sawSynAck, sawHandshakeAck, sawData, sawDataAck, sawFin bool
	var clientISS uint32
	for _, r := range recs {
		p := r.Packet
		switch {
		case p.Flags.Has(protocol.FlagSYN | protocol.FlagACK):
			sawSynAck = true
			if !sawSyn {
				t.Error("SYN|ACK before SYN")
			}
			if p.MSSOpt == 0 {
				t.Error("SYN|ACK missing MSS option")
			}
		case p.Flags.Has(protocol.FlagSYN):
			sawSyn = true
			clientISS = p.Seq
			if p.MSSOpt == 0 {
				t.Error("SYN missing MSS option")
			}
			if !p.HasTS {
				t.Error("SYN missing timestamps")
			}
		case p.Flags.Has(protocol.FlagFIN):
			sawFin = true
		case p.DataLen() > 0:
			sawData = true
			if p.ECN != protocol.ECNECT0 {
				t.Error("data not ECN-capable")
			}
			if !p.HasTS {
				t.Error("data missing timestamp option")
			}
			// The echo carries the same payload in both directions:
			// check sequence numbering on the client's copy only.
			if p.SrcIP == cli.IP && bytes.Contains(p.Payload, []byte("wire-check")) && p.Seq != clientISS+1 {
				t.Errorf("first data seq %d, want ISS+1 = %d", p.Seq, clientISS+1)
			}
		case p.Flags.Has(protocol.FlagACK):
			if sawSynAck && !sawData {
				sawHandshakeAck = true
			} else if sawData {
				sawDataAck = true
			}
		}
	}
	for name, ok := range map[string]bool{
		"SYN": sawSyn, "SYN|ACK": sawSynAck, "handshake ACK": sawHandshakeAck,
		"data": sawData, "data ACK": sawDataAck, "FIN": sawFin,
	} {
		if !ok {
			t.Errorf("wire capture missing %s", name)
		}
	}

	// The capture round-trips through a standard pcap file.
	f, err := os.CreateTemp("", "tas-*.pcap")
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(f.Name())
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.WritePacket(r.TsNanos, r.Packet); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	rf, err := os.Open(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rd, err := trace.NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, err := rd.Next(); err != nil {
			break
		}
		count++
	}
	if count != len(recs) {
		t.Fatalf("pcap round trip: %d of %d packets", count, len(recs))
	}
}
